"""Struct-of-arrays cycle core (``REPRO_BACKEND=array``).

This is the same machine as :class:`repro.pipeline.core.Pipeline` —
same fetch/dispatch/issue/complete/commit algorithm, same policy and
observer contract, same :class:`~repro.pipeline.usage.CycleUsage`
stream, bit-identical results — with the per-cycle state held in
preallocated parallel columns instead of ``InflightOp`` objects and
dict calendars:

* every in-flight instruction is a *slot index* into ~20 parallel
  int/object columns (``_seq``, ``_ready``, ``_unres``, ``_icyc``, ...),
  recycled through a free list when the op commits or is squashed;
* the cycle-keyed event calendars (result-bus completion, non-bus
  completion, branch resolution) are power-of-two rings of slot lists
  indexed by ``cycle & mask`` — the ring is sized past the deepest
  possible look-ahead (main-memory latency plus pipeline depth), so a
  slot is always drained before it can be re-targeted;
* functional-unit occupancy is a per-class ring of *bitmask ints*
  (bit ``i`` = instance ``i`` holds an op that cycle); the per-cycle
  activity tuples handed to policies are table look-ups on the mask;
* D-cache port reservations are int rings, and the issue-count latch
  history reuses the object core's ring-buffer layout verbatim.

The entire per-cycle step runs as one fused method so the hot loop
pays for list indexing instead of attribute chases, object allocation,
and per-stage call overhead.

Equivalence subtleties (all pinned by
``tests/integration/test_backend_equivalence.py``):

* The rename map is a 64-entry slot list.  The wrong-path checkpoint
  snapshots it together with per-slot generation counters; restore
  drops entries whose slot was recycled or whose op committed — the
  object core keeps such stale producers in the dict, but they are
  semantically inert there (dispatch skips committed producers), so
  dropping them is observationally identical.
* Squashed wrong-path ops that already issued keep their slot until
  their completion-calendar entry drains (mirroring the object core's
  liveness through the calendar reference); unissued or completed ones
  free at squash time.

Batching seam (DESIGN.md §14): every column is indexed by a flat slot
id and every ring by ``cycle & mask``, with no per-run global state
outside ``self``.  Running K independent seeds in lockstep means
widening each column to K rows per slot and letting the per-cycle
loops stride over runs — the layout was chosen so that change is
mechanical and ships in a follow-up.

This module deliberately does not support :meth:`Pipeline.capture_ops`
(pipetrace rendering keeps using the object core, which retains real
``InflightOp`` records).
"""

from __future__ import annotations

import random
from collections import deque
from typing import Callable, Deque, Dict, List, Optional, Tuple

from ..backend.funits import FU_LATENCY, AllocationPolicy
from ..core.interface import CycleConstraints, GatingPolicy
from ..frontend.branch_predictor import BranchPredictor
from ..memory.hierarchy import CacheHierarchy
from ..trace.uop import FUClass, MicroOp, OpClass
from ..trace.stream import TraceStream
from .config import MachineConfig
from .core import _DEADLOCK_LIMIT, _FU_EXEC_CLASSES, CycleObserver
from .stats import SimStats
from .usage import CycleUsage, UsageTotals, activity_mask_table

__all__ = ["ArrayPipeline"]

# -- per-op-class constant tables, indexed by OpClass (an IntEnum) ----------

_F_LOAD, _F_STORE, _F_MEM, _F_BRANCH, _F_FP = 1, 2, 4, 8, 16

_N_CLASSES = len(OpClass)
_LATENCY: Tuple[int, ...] = tuple(
    FU_LATENCY[cls].latency for cls in OpClass)
_PIPELINED: Tuple[bool, ...] = tuple(
    FU_LATENCY[cls].pipelined for cls in OpClass)


def _class_flags(cls: OpClass) -> int:
    probe = MicroOp(0, 0, cls,
                    mem_addr=0 if cls in (OpClass.LOAD, OpClass.STORE)
                    else None,
                    taken=False)
    return ((_F_LOAD if probe.is_load else 0)
            | (_F_STORE if probe.is_store else 0)
            | (_F_MEM if probe.is_mem else 0)
            | (_F_BRANCH if probe.is_branch else 0)
            | (_F_FP if probe.is_fp else 0))


_FLAGS: Tuple[int, ...] = tuple(_class_flags(cls) for cls in OpClass)
#: FUClass *index* (int) per op class, matching funits' dispatch table
_FU_OF: Tuple[int, ...] = tuple(
    int(MicroOp(0, 0, cls,
                mem_addr=0 if cls in (OpClass.LOAD, OpClass.STORE)
                else None).fu_class)
    for cls in OpClass)
_FU_MEMBERS: Tuple[FUClass, ...] = tuple(FUClass)
_MEM_PORT = int(FUClass.MEM_PORT)


#: shared mask -> activity-tuple tables (identity-shared with DCG's
#: verify tables, so its cross-check is a pointer comparison)
_mask_table = activity_mask_table


class ArrayPipeline:
    """Drop-in replacement for :class:`~repro.pipeline.core.Pipeline`
    with struct-of-arrays state.  Constructor, :meth:`run`,
    :meth:`add_observer`, and every observable output are identical."""

    def __init__(self, config: MachineConfig, stream: TraceStream,
                 policy: GatingPolicy,
                 hierarchy: Optional[CacheHierarchy] = None,
                 predictor: Optional[BranchPredictor] = None) -> None:
        self.config = config
        self.stream = stream
        self.policy = policy
        policy.bind(config)
        self.hierarchy = hierarchy or CacheHierarchy(config.hierarchy)
        self.predictor = predictor or BranchPredictor(
            l1_entries=config.bpred_l1_entries,
            l2_entries=config.bpred_l2_entries,
            history_bits=config.bpred_history_bits,
            btb_entries=config.btb_entries,
            btb_assoc=config.btb_assoc,
            ras_depth=config.ras_depth)
        self.observers: List[CycleObserver] = []
        self.stats = SimStats()
        self.totals = UsageTotals()

        depth = config.depth
        self._front_latency = depth.front_latency
        self._issue_to_execute = depth.issue_to_execute
        self._issue_to_mem = depth.issue_to_mem
        self._fetch_width = config.fetch_width
        self._commit_width = config.commit_width
        self._issue_width_cfg = config.issue_width
        self._decode_width = config.decode_width
        self._window_size = config.window_size
        self._lsq_size = config.lsq_size
        self._writeback_depth = depth.writeback
        self._line_bytes = self.hierarchy.l1i.line_bytes
        self._l1i_hit_latency = self.hierarchy.config.l1i.hit_latency
        self._l1d_hit_latency = self.hierarchy.config.l1d.hit_latency

        regread, execute, mem = depth.regread, depth.execute, depth.mem
        self._rename_depth = depth.rename
        # issued-count ring + sliding stage windows: the regread /
        # execute / mem latch occupancies are contiguous windows over
        # past issue counts, so each is updated incrementally from the
        # cycle entering and the cycle leaving its window instead of
        # being re-summed; _win_edges holds the four window boundaries
        # as offsets behind the current cycle
        self._win_edges = (1, 1 + regread, 1 + regread + execute,
                           1 + regread + execute + mem)
        isize = 1
        while isize < regread + execute + mem + 2:
            isize <<= 1
        self._iring_mask = isize - 1
        self._issued_ring = [0] * isize
        self._rf_sum = 0
        self._ex_sum = 0
        self._mem_sum = 0

        # event-ring horizon: the deepest calendar look-ahead is a load
        # missing to main memory (absolute latency, Table 1 convention)
        # plus issue depth and the +2 writeback/spill slack; unpipelined
        # dividers and the deep-pipeline config stay far below it
        hier = self.hierarchy.config
        horizon = (max(hier.memory_latency, hier.l2.hit_latency,
                       hier.l1d.hit_latency, 20)
                   + self._issue_to_mem + depth.writeback + 8)
        size = 1
        while size < horizon:
            size <<= 1
        self._cal_size = size
        self._cal_mask = size - 1
        self._bus_ring: List[List[int]] = [[] for _ in range(size)]
        self._other_ring: List[List[int]] = [[] for _ in range(size)]
        self._resolve_ring: List[List[int]] = [[] for _ in range(size)]
        self._pload_ring = [0] * size
        self._pstore_ring = [0] * size

        # functional units: per-class busy_until columns + activity
        # bitmask rings + per-class mask->tuple tables
        counts = dict(config.fu_counts)
        self._fu_counts = counts
        self._fu_busy: List[List[int]] = [
            [-1] * counts.get(cls, 0) for cls in _FU_MEMBERS]
        self._fu_len = [counts.get(cls, 0) for cls in _FU_MEMBERS]
        self._fu_dis = [0] * len(_FU_MEMBERS)
        self._fu_rr = [0] * len(_FU_MEMBERS)
        self._sequential = (config.fu_policy
                           is AllocationPolicy.SEQUENTIAL_PRIORITY)
        self._act_rings: List[List[int]] = [
            [0] * size for _ in _FU_MEMBERS]
        self._exec_rows: Tuple[Tuple[FUClass, int, List[int],
                                     Tuple[Tuple[bool, ...], ...],
                                     int], ...] = \
            tuple((cls, int(cls), self._act_rings[int(cls)],
                   _mask_table(counts.get(cls, 0)), counts.get(cls, 0))
                  for cls in _FU_EXEC_CLASSES)
        #: reusable (class, active, capacity) rows handed to
        #: UsageTotals.add so it never re-sums activity tuples
        self._fu_counts_buf: List[Tuple[FUClass, int, int]] = \
            [(cls, 0, 0) for cls in _FU_EXEC_CLASSES]
        self._last_cons: Optional[CycleConstraints] = None
        #: constant-constraints fast path (base / DCG): fetch once,
        #: skip the per-cycle constraints() call
        self._static_cons: Optional[CycleConstraints] = (
            policy.constraints(0) if getattr(
                policy, "constraints_static", False) else None)

        # op columns; slots recycled through the free list
        cap = config.window_size + 256
        self._cap = 0
        self._cls: List[OpClass] = []
        self._flags: List[int] = []
        self._seq: List[int] = []
        self._dest: List[int] = []
        self._mem: List[int] = []
        self._pc: List[int] = []
        self._taken: List[bool] = []
        self._btarget: List[Optional[int]] = []
        self._ptaken: List[bool] = []
        self._ptarget: List[Optional[int]] = []
        self._ready: List[int] = []
        self._unres: List[int] = []
        self._icyc: List[int] = []
        self._cons_ready: List[int] = []
        self._done: List[int] = []
        self._com: List[int] = []
        self._wp: List[int] = []
        self._sq: List[int] = []
        #: 1 while the op sits in the resolve ring — a deep-regread
        #: branch can commit before resolving, and its slot must not be
        #: recycled under a live calendar reference
        self._resq: List[int] = []
        self._gen: List[int] = []
        self._wait: List[List[int]] = []
        self._free: List[int] = []
        self._grow(cap)

        # machine state
        self.cycle = 0
        self._window: Deque[int] = deque()
        self._pending_issue: List[int] = []
        self._frontend: Deque[tuple] = deque()
        self._frontend_cap = config.fetch_width * (self._front_latency + 2)
        self._lsq_count = 0
        self._rp: List[int] = [-1] * 64          # register -> producer slot
        self._store_map: Dict[int, int] = {}

        self._fetch_blocked_until = 0
        self._fetch_frozen = False
        self._last_fetch_line = -1

        self._wp_rng = random.Random(0x0D15EA5E)
        self._wp_active = False
        self._wp_pc = 0
        self._wp_seq = 0
        self._wp_dest = 0
        self._last_mem_addr = 0x1000_0000
        #: (branch slot, branch gen, rp snapshot, rp gen snapshot)
        self._checkpoint: Optional[Tuple[int, int, List[int],
                                         List[int]]] = None
        self._last_commit_cycle = 0

    # ------------------------------------------------------------------
    # slot management
    # ------------------------------------------------------------------

    def _grow(self, extra: int) -> None:
        base = self._cap
        self._cls.extend([OpClass.NOP] * extra)
        self._flags.extend([0] * extra)
        self._seq.extend([0] * extra)
        self._dest.extend([-1] * extra)
        self._mem.extend([0] * extra)
        self._pc.extend([0] * extra)
        self._taken.extend([False] * extra)
        self._btarget.extend([None] * extra)
        self._ptaken.extend([False] * extra)
        self._ptarget.extend([None] * extra)
        self._ready.extend([0] * extra)
        self._unres.extend([0] * extra)
        self._icyc.extend([-1] * extra)
        self._cons_ready.extend([-1] * extra)
        self._done.extend([0] * extra)
        self._com.extend([0] * extra)
        self._wp.extend([0] * extra)
        self._sq.extend([0] * extra)
        self._resq.extend([0] * extra)
        self._gen.extend([0] * extra)
        self._wait.extend([] for _ in range(extra))
        self._cap += extra
        self._free.extend(range(self._cap - 1, base - 1, -1))

    def _release(self, slot: int) -> None:
        """Recycle ``slot`` unless the rename map still references it
        (the object core would keep such an op alive through the dict)."""
        dest = self._dest[slot]
        if dest >= 0 and self._rp[dest] == slot:
            return
        waiters = self._wait[slot]
        if waiters:
            # squashed-before-issue producers can still hold waiters;
            # those waiters are themselves squashed, so just drop them
            waiters.clear()
        self._gen[slot] += 1
        self._free.append(slot)

    def add_observer(self, observer: CycleObserver) -> None:
        self.observers.append(observer)

    def capture_ops(self, limit: int) -> None:
        raise NotImplementedError(
            "pipetrace capture needs InflightOp records; use the object "
            "backend (repro.pipeline.core.Pipeline)")

    # ------------------------------------------------------------------
    # top-level loop
    # ------------------------------------------------------------------

    def run(self, max_instructions: Optional[int] = None) -> SimStats:
        target = max_instructions
        stats = self.stats
        stream = self.stream
        window = self._window
        step = self._step
        while True:
            if target is not None and stats.committed >= target:
                break
            if (not window and not self._frontend and stream.exhausted):
                break
            step()
            if self.cycle - self._last_commit_cycle > _DEADLOCK_LIMIT:
                raise RuntimeError(
                    f"pipeline deadlock: no commit since cycle "
                    f"{self._last_commit_cycle} (now {self.cycle})")
        self.stats.finalize(self)
        return self.stats

    # ------------------------------------------------------------------
    # the fused per-cycle step
    # ------------------------------------------------------------------

    def _step(self) -> None:
        c = self.cycle
        policy = self.policy
        cons = self._static_cons
        if cons is None:
            cons = policy.constraints(c)
        if cons is not self._last_cons:
            disabled = cons.disabled_fus
            fu_len = self._fu_len
            fu_dis = self._fu_dis
            for cls in _FU_EXEC_CLASSES:
                count = disabled.get(cls, 0)
                total = fu_len[cls]
                if not 0 <= count <= total:
                    raise ValueError(
                        f"cannot disable {count} of {total} "
                        f"{cls.name} units")
                fu_dis[cls] = count
            self._last_cons = cons
        usage = CycleUsage(c)
        stats = self.stats
        mwp = self.config.model_wrong_path
        cmask = self._cal_mask
        cidx = c & cmask

        o_done = self._done
        o_com = self._com
        o_sq = self._sq
        o_flags = self._flags
        o_dest = self._dest
        o_ready = self._ready
        o_unres = self._unres
        o_icyc = self._icyc
        o_cons = self._cons_ready
        o_seq = self._seq
        o_mem = self._mem
        o_wp = self._wp
        o_wait = self._wait
        rp = self._rp
        window = self._window

        # -- branch resolution ------------------------------------------
        resolve_list = self._resolve_ring[cidx]
        if resolve_list:
            predictor_resolve = self.predictor.resolve
            o_pc = self._pc
            o_taken = self._taken
            o_btarget = self._btarget
            o_ptaken = self._ptaken
            o_ptarget = self._ptarget
            o_resq = self._resq
            for s in resolve_list:
                o_resq[s] = 0
                mispredicted = predictor_resolve(
                    o_pc[s], o_ptaken[s], o_ptarget[s],
                    o_taken[s], o_btarget[s])
                if mispredicted:
                    stats.mispredicts += 1
                    self._fetch_frozen = False
                    blocked = c + self.config.mispredict_redirect
                    if blocked > self._fetch_blocked_until:
                        self._fetch_blocked_until = blocked
                    if mwp:
                        self._squash_wrong_path(s)
                if o_com[s]:
                    # deep-regread branch that committed before resolving;
                    # its calendar reference just drained
                    self._release(s)
            resolve_list.clear()

        # -- completion / writeback -------------------------------------
        bus_list = self._bus_ring[cidx]
        buses_used = 0
        if bus_list:
            writers = bus_list
            if mwp:
                writers = []
                for s in bus_list:
                    if o_sq[s]:
                        self._release(s)
                    else:
                        writers.append(s)
            n_buses = cons.result_buses
            if len(writers) > n_buses:
                self._bus_ring[(c + 1) & cmask].extend(writers[n_buses:])
                writers = writers[:n_buses]
            for s in writers:
                o_done[s] = 1
            buses_used = len(writers)
            bus_list.clear()
        other_list = self._other_ring[cidx]
        if other_list:
            for s in other_list:
                if mwp and o_sq[s]:
                    self._release(s)
                else:
                    o_done[s] = 1
            other_list.clear()
        usage.result_bus_used = buses_used
        usage.latch_slots["writeback"] = buses_used * self._writeback_depth

        # -- commit ------------------------------------------------------
        committed = 0
        if window:
            commit_width = self._commit_width
            commit_counts = stats.commit_class_counts
            store_map = self._store_map
            o_cls = self._cls
            pstore_ring = self._pstore_ring
            pload_ring = self._pload_ring
            hierarchy_store = self.hierarchy.store
            store_delay = cons.store_extra_delay
            dcache_ports = cons.dcache_ports
            free = self._free
            gens = self._gen
            o_resq = self._resq
            while window and committed < commit_width:
                s = window[0]
                if not o_done[s]:
                    break
                flags = o_flags[s]
                if flags & _F_STORE:
                    aidx = (c + store_delay) & cmask
                    stores_now = pstore_ring[aidx]
                    if pload_ring[aidx] + stores_now >= dcache_ports:
                        break
                    pstore_ring[aidx] = stores_now + 1
                    addr = o_mem[s]
                    hierarchy_store(addr)
                    stats.stores += 1
                    if store_map.get(addr) == s:
                        del store_map[addr]
                window.popleft()
                o_com[s] = 1
                committed += 1
                stats.committed += 1
                commit_counts[o_cls[s]] += 1
                if flags & _F_MEM:
                    self._lsq_count -= 1
                dest = o_dest[s]
                if dest >= 0 and rp[dest] == s:
                    rp[dest] = -1
                if o_resq[s]:
                    continue  # unresolved branch: freed at resolve drain
                gens[s] += 1
                free.append(s)
            if committed:
                self._last_commit_cycle = c
        usage.committed = committed

        # -- issue (wakeup / select) ------------------------------------
        pending = self._pending_issue
        issued = 0
        if pending:
            width = cons.issue_width
            if self._issue_width_cfg < width:
                width = self._issue_width_cfg
            i2e = self._issue_to_execute
            i2m = self._issue_to_mem
            fu_busy = self._fu_busy
            fu_len = self._fu_len
            fu_dis = self._fu_dis
            sequential = self._sequential
            act_rings = self._act_rings
            bus_ring = self._bus_ring
            other_ring = self._other_ring
            grants = usage.grants
            pload_ring = self._pload_ring
            pstore_ring = self._pstore_ring
            store_map = self._store_map
            keep: Optional[List[int]] = None
            for i, s in enumerate(pending):
                if issued >= width:
                    if keep is not None:
                        keep.extend(pending[i:])
                    break
                ok = False
                if o_icyc[s] < 0 and o_unres[s] == 0 and o_ready[s] <= c:
                    flags = o_flags[s]
                    cls = self._cls[s]
                    if not flags & _F_MEM:
                        # execution / branch / nop issue
                        latency = _LATENCY[cls]
                        ex_start = c + i2e
                        fu = _FU_OF[cls]
                        unit = self._allocate(fu, cls, ex_start)
                        if unit >= 0:
                            ring = act_rings[fu]
                            bit = 1 << unit
                            for cc in range(ex_start, ex_start + latency):
                                ring[cc & cmask] |= bit
                            grants.append((_FU_MEMBERS[fu], unit, latency))
                            o_icyc[s] = c
                            consumer_ready = c + latency
                            o_cons[s] = consumer_ready
                            waiters = o_wait[s]
                            if waiters:
                                for w in waiters:
                                    o_unres[w] -= 1
                                    if consumer_ready > o_ready[w]:
                                        o_ready[w] = consumer_ready
                                waiters.clear()
                            complete = (c + 1 + latency) & cmask
                            if o_dest[s] >= 0:
                                bus_ring[complete].append(s)
                            else:
                                other_ring[complete].append(s)
                            if flags & _F_BRANCH:
                                self._resq[s] = 1
                                self._resolve_ring[
                                    ex_start & cmask].append(s)
                            if flags & _F_FP:
                                usage.issued_fp += 1
                            ok = True
                    elif flags & _F_LOAD:
                        addr = o_mem[s]
                        st = store_map.get(addr)
                        forwarding = -1
                        blocked = False
                        if (st is not None and o_seq[st] < o_seq[s]
                                and not o_com[st]):
                            if o_icyc[st] < 0:
                                blocked = True  # older store not issued
                            else:
                                forwarding = st
                        if not blocked:
                            midx = (c + i2m) & cmask
                            loads_now = pload_ring[midx]
                            if (loads_now + pstore_ring[midx]
                                    < cons.dcache_ports):
                                unit = self._allocate(
                                    _MEM_PORT, cls, c + i2m)
                                if unit >= 0:
                                    pload_ring[midx] = loads_now + 1
                                    self._last_mem_addr = addr
                                    raw = self.hierarchy.load(addr)
                                    if forwarding >= 0:
                                        data_ready = o_icyc[forwarding] + i2e
                                        ready = c + 1 + self._l1d_hit_latency
                                        if data_ready + 1 > ready:
                                            ready = data_ready + 1
                                        stats.forwarded_loads += 1
                                    else:
                                        ready = c + 1 + raw
                                    o_icyc[s] = c
                                    o_cons[s] = ready
                                    waiters = o_wait[s]
                                    if waiters:
                                        for w in waiters:
                                            o_unres[w] -= 1
                                            if ready > o_ready[w]:
                                                o_ready[w] = ready
                                        waiters.clear()
                                    bus_ring[
                                        (ready + 1) & cmask].append(s)
                                    usage.issued_loads += 1
                                    stats.loads += 1
                                    ok = True
                    else:
                        # store: address/data generation, access at commit
                        unit = self._allocate(_MEM_PORT, cls, c + i2m)
                        if unit >= 0:
                            o_icyc[s] = c
                            consumer_ready = c + 1
                            o_cons[s] = consumer_ready
                            waiters = o_wait[s]
                            if waiters:
                                for w in waiters:
                                    o_unres[w] -= 1
                                    if consumer_ready > o_ready[w]:
                                        o_ready[w] = consumer_ready
                                waiters.clear()
                            other_ring[(c + i2e) & cmask].append(s)
                            usage.issued_stores += 1
                            ok = True
                if ok:
                    issued += 1
                    if keep is None:
                        keep = pending[:i]
                elif keep is not None:
                    keep.append(s)
            if keep is not None:
                self._pending_issue = keep
        usage.issued = issued

        # -- dispatch (rename -> window) --------------------------------
        dispatched = 0
        frontend = self._frontend
        if frontend:
            width = self._decode_width
            if cons.rename_width < width:
                width = cons.rename_width
            window_size = self._window_size
            lsq_size = self._lsq_size
            pending = self._pending_issue
            free = self._free
            o_cls = self._cls
            gens = self._gen
            next_ready = c + 1
            while (frontend and dispatched < width
                   and len(window) < window_size):
                entry = frontend[0]
                uop = entry[0]
                if entry[1] > c:
                    break
                is_mem = uop.is_mem
                if is_mem and self._lsq_count >= lsq_size:
                    break
                frontend.popleft()
                if not free:
                    self._grow(self._cap)
                    free = self._free
                s = free.pop()
                op_class = uop.op_class
                o_cls[s] = op_class
                flags = _FLAGS[op_class]
                o_flags[s] = flags
                o_seq[s] = uop.seq
                dest = uop.dest
                o_dest[s] = -1 if dest is None else dest
                o_ready[s] = next_ready
                o_unres[s] = 0
                o_icyc[s] = -1
                o_cons[s] = -1
                o_done[s] = 0
                o_com[s] = 0
                if mwp:
                    # wrong-path/squash marks are only ever read by the
                    # squash machinery, which exists only under
                    # model_wrong_path
                    o_wp[s] = entry[4]
                    o_sq[s] = 0
                if flags & _F_BRANCH:
                    self._pc[s] = uop.pc
                    self._taken[s] = uop.taken
                    self._btarget[s] = uop.target
                    self._ptaken[s] = entry[2]
                    self._ptarget[s] = entry[3]
                    if entry[5]:
                        # checkpoint the rename map (plus generations, so
                        # recycled slots are dropped at restore)
                        self._checkpoint = (
                            s, gens[s], rp[:],
                            [gens[p] if p >= 0 else 0 for p in rp])
                for src in uop.srcs:
                    p = rp[src]
                    if p >= 0 and not o_com[p]:
                        consumer_ready = o_cons[p]
                        if consumer_ready >= 0:
                            if consumer_ready > o_ready[s]:
                                o_ready[s] = consumer_ready
                        else:
                            o_unres[s] += 1
                            o_wait[p].append(s)
                if dest is not None:
                    rp[dest] = s
                if is_mem:
                    self._lsq_count += 1
                    addr = uop.mem_addr
                    o_mem[s] = addr
                    if flags & _F_STORE:
                        self._store_map[addr] = s
                window.append(s)
                pending.append(s)
                dispatched += 1
        usage.dispatched = dispatched
        usage.renamed = dispatched

        # -- fetch -------------------------------------------------------
        if self._fetch_frozen or c < self._fetch_blocked_until:
            if (self._wp_active and not (c < self._fetch_blocked_until)
                    and mwp):
                self._fetch_wrong_path(c, usage)
            else:
                usage.fetch_stalled = True
        else:
            fetched = 0
            line_bytes = self._line_bytes
            stream = self.stream
            fetch_width = self._fetch_width
            cap = self._frontend_cap
            ready = c + self._front_latency
            last_line = self._last_fetch_line
            predictor_predict = self.predictor.predict
            while fetched < fetch_width and len(frontend) < cap:
                # inlined stream.peek()
                uop = stream._lookahead
                if uop is None:
                    stream._fill()
                    uop = stream._lookahead
                    if uop is None:
                        break
                pc = uop.pc
                line = pc // line_bytes
                if line != last_line:
                    latency = self.hierarchy.fetch(pc)
                    last_line = line
                    if latency > self._l1i_hit_latency:
                        self._fetch_blocked_until = c + latency
                        break
                # inlined stream.next() (lookahead is known non-None)
                stream._lookahead = None
                stream._delivered += 1
                fetched += 1
                stats.fetched += 1
                if uop.is_branch:
                    predicted_taken, predicted_target = \
                        predictor_predict(pc)
                    taken = uop.taken
                    mispredicted = (
                        predicted_taken != taken
                        or (taken and predicted_target != uop.target))
                    frontend.append((uop, ready, predicted_taken,
                                     predicted_target, False,
                                     mispredicted and mwp))
                    if mispredicted:
                        self._fetch_frozen = True
                        if mwp:
                            self._wp_active = True
                            self._wp_pc = (
                                predicted_target
                                if predicted_taken
                                and predicted_target is not None
                                else pc + 4)
                            self._wp_seq = uop.seq + 1
                        break
                    if taken:
                        break
                else:
                    frontend.append((uop, ready, False, None, False,
                                     False))
            self._last_fetch_line = last_line
            usage.fetched = fetched
            usage.decoded = fetched
            if fetched == 0:
                usage.fetch_stalled = True

        # -- per-cycle bookkeeping --------------------------------------
        ring = self._issued_ring
        im = self._iring_mask
        e1, e2, e3, e4 = self._win_edges
        a = ring[(c - e1) & im]
        b = ring[(c - e2) & im]
        d = ring[(c - e3) & im]
        e = ring[(c - e4) & im]
        rf = self._rf_sum = self._rf_sum + a - b
        ex = self._ex_sum = self._ex_sum + b - d
        mem = self._mem_sum = self._mem_sum + d - e
        ring[c & im] = issued
        latch_slots = usage.latch_slots
        latch_slots["regread"] = rf
        latch_slots["execute"] = ex
        latch_slots["mem"] = mem
        latch_slots["rename"] = dispatched * self._rename_depth

        fu_active = usage.fu_active
        fu_counts = self._fu_counts_buf
        row_i = 0
        for fu_cls, fu_idx, act_ring, table, capacity in self._exec_rows:
            bits = act_ring[cidx]
            if bits:
                act_ring[cidx] = 0
            fu_active[fu_cls] = table[bits]
            fu_counts[row_i] = (fu_cls, bits.bit_count(), capacity)
            row_i += 1
        usage.dcache_load_ports = self._pload_ring[cidx]
        self._pload_ring[cidx] = 0
        usage.dcache_store_ports = self._pstore_ring[cidx]
        self._pstore_ring[cidx] = 0
        usage.window_occupancy = len(window)
        usage.lsq_occupancy = self._lsq_count
        stats.cycles = c + 1

        decision = policy.observe(usage)
        for observer in self.observers:
            observer(usage, decision)
        self.totals.add(usage, fu_counts)
        self.cycle = c + 1

    # ------------------------------------------------------------------
    # functional-unit allocation
    # ------------------------------------------------------------------

    def _allocate(self, fu: int, cls: OpClass, cycle: int) -> int:
        """Allocate an instance of class index ``fu`` starting at
        ``cycle``; returns the unit index or -1 (all enabled busy)."""
        limit = self._fu_len[fu] - self._fu_dis[fu]
        if limit <= 0:
            return -1
        busy = self._fu_busy[fu]
        hold = (cycle if _PIPELINED[cls]
                else cycle + _LATENCY[cls] - 1)
        if self._sequential:
            for i in range(limit):
                if busy[i] < cycle:
                    busy[i] = hold
                    return i
            return -1
        start = self._fu_rr[fu] % limit
        for i in range(start, limit):
            if busy[i] < cycle:
                busy[i] = hold
                self._fu_rr[fu] = i + 1
                return i
        for i in range(start):
            if busy[i] < cycle:
                busy[i] = hold
                self._fu_rr[fu] = i + 1
                return i
        return -1

    # ------------------------------------------------------------------
    # wrong-path modeling
    # ------------------------------------------------------------------

    def _squash_wrong_path(self, branch_slot: int) -> None:
        self._wp_active = False
        if self._frontend:
            self._frontend = deque(e for e in self._frontend if not e[4])
        window = self._window
        o_wp = self._wp
        o_sq = self._sq
        stats = self.stats
        popped: List[int] = []
        while window and o_wp[window[-1]]:
            s = window.pop()
            o_sq[s] = 1
            stats.wrong_path_squashed += 1
            if self._flags[s] & _F_MEM:
                self._lsq_count -= 1
            popped.append(s)
        pending = self._pending_issue
        if pending and any(o_sq[s] for s in pending):
            self._pending_issue = [s for s in pending if not o_sq[s]]
        checkpoint = self._checkpoint
        if checkpoint is not None:
            chk_slot, chk_gen, saved_rp, saved_gen = checkpoint
            if chk_slot == branch_slot and chk_gen == self._gen[branch_slot]:
                rp = self._rp
                gens = self._gen
                o_com = self._com
                for reg in range(len(rp)):
                    p = saved_rp[reg]
                    if p >= 0 and (gens[p] != saved_gen[reg] or o_com[p]):
                        p = -1
                    rp[reg] = p
                self._checkpoint = None
        # unissued ops have no calendar reference; completed ones have
        # drained theirs — both free now.  Issued-but-incomplete ops
        # free when their completion-ring entry is filtered.
        o_icyc = self._icyc
        o_done = self._done
        for s in popped:
            if o_icyc[s] < 0 or o_done[s]:
                self._release(s)

    def _fetch_wrong_path(self, c: int, usage: CycleUsage) -> None:
        fetched = 0
        line_bytes = self._line_bytes
        frontend = self._frontend
        ready = c + self._front_latency
        while (fetched < self._fetch_width
               and len(frontend) < self._frontend_cap):
            line = self._wp_pc // line_bytes
            if line != self._last_fetch_line:
                latency = self.hierarchy.fetch(self._wp_pc)
                self._last_fetch_line = line
                if latency > self._l1i_hit_latency:
                    self._fetch_blocked_until = c + latency
                    break
            uop = self._synth_wrong_path_op()
            frontend.append((uop, ready, False, None, True, False))
            fetched += 1
            self.stats.wrong_path_fetched += 1
        usage.fetched = fetched
        usage.decoded = fetched
        if fetched == 0:
            usage.fetch_stalled = True

    def _synth_wrong_path_op(self) -> MicroOp:
        pc = self._wp_pc
        self._wp_pc += 4
        seq = self._wp_seq
        self._wp_seq += 1
        dest = 20 + (self._wp_dest % 8)
        self._wp_dest += 1
        if self._wp_rng.random() < 0.25:
            offset = 8 * self._wp_rng.randrange(-64, 64)
            addr = max(0, (self._last_mem_addr & ~7) + offset)
            return MicroOp(seq, pc, OpClass.LOAD, dest=dest, mem_addr=addr)
        return MicroOp(seq, pc, OpClass.IALU, dest=dest)
