"""Cycle-level out-of-order superscalar pipeline."""

from .config import BASELINE_DEPTH, DEEP_DEPTH, DepthConfig, MachineConfig
from .core import Pipeline
from .inflight import InflightOp
from .pipetrace import render_pipetrace
from .stats import SimStats
from .usage import CycleUsage, UsageTotals
from .verification import InvariantChecker, InvariantViolation

__all__ = [
    "BASELINE_DEPTH",
    "DEEP_DEPTH",
    "CycleUsage",
    "DepthConfig",
    "InflightOp",
    "InvariantChecker",
    "InvariantViolation",
    "MachineConfig",
    "Pipeline",
    "render_pipetrace",
    "SimStats",
    "UsageTotals",
]
