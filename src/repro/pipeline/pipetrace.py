"""Pipetrace rendering (sim-outorder-style instruction timelines).

Enable per-op capture with :meth:`Pipeline.capture_ops`, run the
simulation, then render::

    pipe.capture_ops(32)
    pipe.run(max_instructions=...)
    print(render_pipetrace(pipe.captured_ops))

Each instruction gets one row; the columns are cycles, marked with the
stage the instruction occupies:

====  ==========================================================
mark  meaning
====  ==========================================================
``D`` dispatch (entered the window after fetch/decode/rename)
``.`` waiting in the window for operands or resources
``I`` selected by the issue stage
``e`` in flight (register read / execute / memory)
``W`` writeback / completion
``-`` completed, waiting for in-order commit
``C`` commit
``x`` squashed (wrong-path)
====  ==========================================================
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from .inflight import InflightOp

__all__ = ["render_pipetrace"]


def _timeline(op: InflightOp, start: int, end: int) -> str:
    cells: List[str] = []
    dispatch = op.dispatch_cycle
    issue = op.issued_cycle
    complete = op.complete_cycle
    commit = op.commit_cycle
    for cycle in range(start, end + 1):
        if cycle < dispatch:
            cells.append(" ")
        elif cycle == dispatch:
            cells.append("D")
        elif issue is None or cycle < issue:
            cells.append("x" if op.squashed else ".")
        elif cycle == issue:
            cells.append("I")
        elif commit is not None and cycle == commit:
            # commit may land in the writeback cycle itself
            cells.append("C")
        elif complete is not None and cycle > complete:
            if commit is None or cycle < commit:
                cells.append("x" if op.squashed else "-")
            else:
                cells.append(" ")
        elif complete is not None and cycle == complete:
            cells.append("W")
        elif complete is None and op.squashed:
            cells.append("x")
        else:
            cells.append("e")
    return "".join(cells).rstrip()


def render_pipetrace(ops: Sequence[InflightOp],
                     max_cycles: int = 120,
                     start: Optional[int] = None) -> str:
    """Timeline chart for captured in-flight ops.

    Parameters
    ----------
    ops:
        Ops captured via :meth:`Pipeline.capture_ops`.
    max_cycles:
        Width cap of the rendered window.
    start:
        First cycle shown; defaults to the earliest dispatch.
    """
    if not ops:
        return "(no ops captured)"
    first = min(op.dispatch_cycle for op in ops) if start is None else start
    last_candidates = [first]
    for op in ops:
        for value in (op.commit_cycle, op.complete_cycle, op.issued_cycle,
                      op.dispatch_cycle):
            if value is not None:
                last_candidates.append(value)
                break
    last = min(max(last_candidates), first + max_cycles - 1)
    header = (f"cycles {first}..{last}   "
              "D=dispatch .=wait I=issue e=execute W=writeback "
              "-=await-commit C=commit x=squashed")
    lines = [header, ""]
    label_width = max(len(_label(op)) for op in ops)
    for op in ops:
        lines.append(f"{_label(op).ljust(label_width)} |"
                     f"{_timeline(op, first, last)}")
    return "\n".join(lines)


def _label(op: InflightOp) -> str:
    tag = "~" if op.wrong_path else " "
    return f"{tag}#{op.seq} {op.uop.op_class.name.lower():6s}"
