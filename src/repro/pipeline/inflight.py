"""In-flight instruction records for the out-of-order window."""

from __future__ import annotations

from typing import List, Optional

from ..trace.uop import MicroOp

__all__ = ["InflightOp"]


class InflightOp:
    """One instruction between dispatch and commit.

    Scheduling protocol: at dispatch the op learns its register
    producers.  A producer that has already been *scheduled* (issued)
    contributes its ``consumer_ready_cycle`` immediately; otherwise the
    op registers itself as a waiter and ``unresolved`` counts the
    producers still unscheduled.  The op may issue once ``unresolved``
    is zero and ``ready_cycle`` has arrived.
    """

    __slots__ = (
        "uop", "dispatch_cycle", "ready_cycle", "unresolved", "waiters",
        "issued_cycle", "consumer_ready_cycle", "complete_cycle",
        "completed", "committed", "mem_latency", "forwarded",
        "mispredicted", "predicted_taken", "predicted_target",
        "wrong_path", "squashed", "commit_cycle",
    )

    def __init__(self, uop: MicroOp, dispatch_cycle: int) -> None:
        self.uop = uop
        self.dispatch_cycle = dispatch_cycle
        self.ready_cycle = dispatch_cycle + 1
        self.unresolved = 0
        self.waiters: List["InflightOp"] = []
        self.issued_cycle: Optional[int] = None
        self.consumer_ready_cycle: Optional[int] = None
        self.complete_cycle: Optional[int] = None
        self.completed = False
        self.committed = False
        self.mem_latency: Optional[int] = None
        self.forwarded = False
        self.mispredicted = False
        self.predicted_taken = False
        self.predicted_target: Optional[int] = None
        self.wrong_path = False   #: speculatively fetched past a mispredict
        self.squashed = False     #: removed by a wrong-path squash
        self.commit_cycle: Optional[int] = None

    @property
    def seq(self) -> int:
        return self.uop.seq

    @property
    def issued(self) -> bool:
        return self.issued_cycle is not None

    def can_issue(self, cycle: int) -> bool:
        return (not self.issued and self.unresolved == 0
                and self.ready_cycle <= cycle)

    def add_producer(self, producer: "InflightOp") -> None:
        """Record a register dependence on ``producer``."""
        if producer.consumer_ready_cycle is not None:
            self.ready_cycle = max(self.ready_cycle,
                                   producer.consumer_ready_cycle)
        else:
            self.unresolved += 1
            producer.waiters.append(self)

    def schedule(self, consumer_ready_cycle: int) -> None:
        """Called at issue: fix when dependents may issue and wake them."""
        self.consumer_ready_cycle = consumer_ready_cycle
        for waiter in self.waiters:
            waiter.unresolved -= 1
            waiter.ready_cycle = max(waiter.ready_cycle, consumer_ready_cycle)
        self.waiters.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = ("committed" if self.committed else
                 "completed" if self.completed else
                 "issued" if self.issued else "waiting")
        return f"<InflightOp #{self.seq} {self.uop.op_class.name} {state}>"
