"""Runtime invariant checking for pipeline runs.

:class:`InvariantChecker` is a pipeline observer that validates every
cycle's usage record and gate decision against the machine's capacity
limits and the gating policies' contracts.  It is cheap enough to leave
attached during experiments and turns silent modelling corruption into
an immediate, located failure.
"""

from __future__ import annotations

from typing import List, Tuple

from ..core.interface import GateDecision
from ..trace.uop import FUClass
from .config import MachineConfig
from .usage import CycleUsage

__all__ = ["InvariantChecker", "InvariantViolation"]

_EXEC_CLASSES = (FUClass.INT_ALU, FUClass.INT_MULT,
                 FUClass.FP_ALU, FUClass.FP_MULT)


class InvariantViolation(AssertionError):
    """A per-cycle capacity or gating invariant failed."""


class InvariantChecker:
    """Attach with ``pipeline.add_observer(checker.observe)``.

    Parameters
    ----------
    config:
        The machine configuration the run uses.
    raise_on_violation:
        When ``False``, violations are collected in :attr:`violations`
        instead of raised (useful for post-mortem reporting).
    """

    def __init__(self, config: MachineConfig,
                 raise_on_violation: bool = True) -> None:
        self.config = config
        self.raise_on_violation = raise_on_violation
        self.violations: List[Tuple[int, str]] = []
        self.cycles_checked = 0

    def _fail(self, cycle: int, message: str) -> None:
        self.violations.append((cycle, message))
        if self.raise_on_violation:
            raise InvariantViolation(f"cycle {cycle}: {message}")

    def observe(self, usage: CycleUsage, decision: GateDecision) -> None:
        cfg = self.config
        c = usage.cycle
        self.cycles_checked += 1

        # machine capacities
        if usage.issued > cfg.issue_width:
            self._fail(c, f"issued {usage.issued} > width {cfg.issue_width}")
        if usage.committed > cfg.commit_width:
            self._fail(c, f"committed {usage.committed} > "
                          f"commit width {cfg.commit_width}")
        if usage.window_occupancy > cfg.window_size:
            self._fail(c, f"window {usage.window_occupancy} > "
                          f"{cfg.window_size}")
        if usage.lsq_occupancy > cfg.lsq_size:
            self._fail(c, f"LSQ {usage.lsq_occupancy} > {cfg.lsq_size}")
        if usage.dcache_ports_used > cfg.dcache_ports:
            self._fail(c, f"D-cache ports {usage.dcache_ports_used} > "
                          f"{cfg.dcache_ports}")
        if usage.result_bus_used > cfg.result_buses:
            self._fail(c, f"result buses {usage.result_bus_used} > "
                          f"{cfg.result_buses}")

        # per-class unit activity within instance counts
        for fu_class in _EXEC_CLASSES:
            mask = usage.fu_active.get(fu_class, ())
            if len(mask) != cfg.fu_counts.get(fu_class, 0):
                self._fail(c, f"{fu_class.name} mask size {len(mask)} != "
                              f"count {cfg.fu_counts.get(fu_class, 0)}")

        # gate decisions must never gate a block that is in use
        for fu_class, gated in decision.fu_gated.items():
            used = usage.fu_used_count(fu_class)
            count = cfg.fu_counts.get(fu_class, 0)
            if gated < 0 or gated + used > count:
                self._fail(c, f"{fu_class.name}: gated {gated} + used "
                              f"{used} exceeds {count}")
        gated_capacity = (cfg.depth.gated_latch_stages * cfg.issue_width
                          + (cfg.depth.ungated_latch_stages
                             * cfg.issue_width))
        used_slots = sum(usage.latch_slots.values())
        if decision.latch_gated_slots + used_slots > gated_capacity:
            self._fail(c, f"latch slots gated {decision.latch_gated_slots} "
                          f"+ used {used_slots} exceed {gated_capacity}")
        if (decision.dcache_ports_gated + usage.dcache_ports_used
                > cfg.dcache_ports):
            self._fail(c, "D-cache decoder gated while in use")
        if (decision.result_buses_gated + usage.result_bus_used
                > cfg.result_buses):
            self._fail(c, "result bus gated while in use")
        if not 0.0 <= decision.issue_queue_gated_fraction <= 1.0:
            self._fail(c, "issue-queue gated fraction out of [0, 1]")

    @property
    def clean(self) -> bool:
        return not self.violations
