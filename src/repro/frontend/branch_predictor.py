"""Branch prediction: 2-level direction predictor, BTB, and RAS.

Table 1 of the paper: 2-level predictor with 8192 entries in each
level, a 32-entry return address stack, an 8192-entry 4-way BTB, and an
8-cycle misprediction penalty (the penalty itself is enforced by the
pipeline, not here).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

__all__ = ["TwoLevelPredictor", "BranchTargetBuffer", "ReturnAddressStack",
           "BranchPredictor", "PredictorStats"]


class PredictorStats:
    """Direction/target prediction counters."""

    __slots__ = ("lookups", "dir_correct", "dir_wrong",
                 "target_wrong", "btb_hits", "btb_misses")

    def __init__(self) -> None:
        self.lookups = 0
        self.dir_correct = 0
        self.dir_wrong = 0
        self.target_wrong = 0
        self.btb_hits = 0
        self.btb_misses = 0

    @property
    def mispredictions(self) -> int:
        return self.dir_wrong + self.target_wrong

    @property
    def mispredict_rate(self) -> float:
        return self.mispredictions / self.lookups if self.lookups else 0.0

    @property
    def accuracy(self) -> float:
        return 1.0 - self.mispredict_rate


class TwoLevelPredictor:
    """GAp-style 2-level adaptive direction predictor.

    First level: per-branch history registers (``l1_entries``); second
    level: pattern history table of 2-bit saturating counters indexed by
    history XOR branch address (gshare-flavoured combining, which is how
    sim-bpred wires a 2-level predictor with both tables populated).
    """

    def __init__(self, l1_entries: int = 8192, l2_entries: int = 8192,
                 history_bits: int = 13) -> None:
        for value, label in ((l1_entries, "l1_entries"), (l2_entries, "l2_entries")):
            if value <= 0 or value & (value - 1):
                raise ValueError(f"{label} must be a power of two")
        if not 1 <= history_bits <= 30:
            raise ValueError("history_bits out of range")
        self.l1_entries = l1_entries
        self.l2_entries = l2_entries
        self.history_bits = history_bits
        self._history: List[int] = [0] * l1_entries
        self._pht: List[int] = [2] * l2_entries  # weakly taken
        self._hist_mask = (1 << history_bits) - 1

    def _l1_index(self, pc: int) -> int:
        return (pc >> 2) % self.l1_entries

    def _l2_index(self, pc: int, history: int) -> int:
        return (history ^ (pc >> 2)) % self.l2_entries

    def predict(self, pc: int) -> bool:
        history = self._history[self._l1_index(pc)]
        return self._pht[self._l2_index(pc, history)] >= 2

    def update(self, pc: int, taken: bool) -> None:
        l1 = self._l1_index(pc)
        history = self._history[l1]
        l2 = self._l2_index(pc, history)
        counter = self._pht[l2]
        if taken:
            self._pht[l2] = min(3, counter + 1)
        else:
            self._pht[l2] = max(0, counter - 1)
        self._history[l1] = ((history << 1) | int(taken)) & self._hist_mask


class BranchTargetBuffer:
    """Set-associative BTB with LRU replacement (default 8192-entry 4-way)."""

    def __init__(self, entries: int = 8192, assoc: int = 4) -> None:
        if entries <= 0 or entries % assoc != 0:
            raise ValueError("entries must be a positive multiple of assoc")
        self.entries = entries
        self.assoc = assoc
        self.num_sets = entries // assoc
        self._sets: List[dict] = [dict() for _ in range(self.num_sets)]

    def _set_tag(self, pc: int) -> Tuple[dict, int]:
        index = (pc >> 2) % self.num_sets
        tag = (pc >> 2) // self.num_sets
        return self._sets[index], tag

    def lookup(self, pc: int) -> Optional[int]:
        """Predicted target for the branch at ``pc``, or ``None``."""
        entries, tag = self._set_tag(pc)
        target = entries.get(tag)
        if target is None:
            return None
        del entries[tag]       # LRU refresh
        entries[tag] = target
        return target

    def update(self, pc: int, target: int) -> None:
        entries, tag = self._set_tag(pc)
        if tag in entries:
            del entries[tag]
        elif len(entries) >= self.assoc:
            del entries[next(iter(entries))]
        entries[tag] = target


class ReturnAddressStack:
    """Fixed-depth return address stack (default 32 entries)."""

    def __init__(self, depth: int = 32) -> None:
        if depth <= 0:
            raise ValueError("depth must be positive")
        self.depth = depth
        self._stack: List[int] = []

    def push(self, return_addr: int) -> None:
        if len(self._stack) >= self.depth:
            del self._stack[0]
        self._stack.append(return_addr)

    def pop(self) -> Optional[int]:
        if not self._stack:
            return None
        return self._stack.pop()

    def __len__(self) -> int:
        return len(self._stack)


class BranchPredictor:
    """Combined front-end predictor used by the fetch stage.

    ``predict`` returns ``(taken, target)``; a taken prediction with no
    BTB target is treated as not-taken by the fetch unit (it cannot
    redirect without a target), which is the sim-outorder behaviour.
    """

    def __init__(self, l1_entries: int = 8192, l2_entries: int = 8192,
                 history_bits: int = 13, btb_entries: int = 8192,
                 btb_assoc: int = 4, ras_depth: int = 32) -> None:
        self.direction = TwoLevelPredictor(l1_entries, l2_entries, history_bits)
        self.btb = BranchTargetBuffer(btb_entries, btb_assoc)
        self.ras = ReturnAddressStack(ras_depth)
        self.stats = PredictorStats()

    def predict(self, pc: int) -> Tuple[bool, Optional[int]]:
        taken = self.direction.predict(pc)
        target = self.btb.lookup(pc) if taken else None
        if taken and target is None:
            self.stats.btb_misses += 1
            return False, None
        if taken:
            self.stats.btb_hits += 1
        return taken, target

    def resolve(self, pc: int, predicted_taken: bool,
                predicted_target: Optional[int],
                actual_taken: bool, actual_target: Optional[int]) -> bool:
        """Update state with the actual outcome; returns ``True`` when
        the branch was mispredicted (direction or target)."""
        self.stats.lookups += 1
        self.direction.update(pc, actual_taken)
        if actual_taken and actual_target is not None:
            self.btb.update(pc, actual_target)
        if predicted_taken != actual_taken:
            self.stats.dir_wrong += 1
            return True
        if actual_taken and predicted_target != actual_target:
            self.stats.target_wrong += 1
            return True
        self.stats.dir_correct += 1
        return False
