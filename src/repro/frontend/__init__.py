"""Front-end components: branch prediction."""

from .branch_predictor import (
    BranchPredictor,
    BranchTargetBuffer,
    PredictorStats,
    ReturnAddressStack,
    TwoLevelPredictor,
)

__all__ = [
    "BranchPredictor",
    "BranchTargetBuffer",
    "PredictorStats",
    "ReturnAddressStack",
    "TwoLevelPredictor",
]
