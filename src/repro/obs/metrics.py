"""Prometheus-style metrics registry (counters, gauges, histograms).

The service's ``/metrics`` used to be a hand-assembled dict; this
module gives it (and anything else) a shared registry of typed
instruments instead:

* :class:`Counter` — monotonically increasing float, optionally with a
  fixed label dimension (``counter.labels(layer="disk").inc()``).
* :class:`Gauge` — a settable value or a zero-argument callback
  sampled at scrape time (queue depth, uptime).
* :class:`Histogram` — exact ``count``/``sum``/``min``/``max`` plus a
  **bounded reservoir** (Vitter's Algorithm R, seeded RNG) for
  percentiles, so a long-lived server's latency samples occupy O(1)
  memory no matter how many jobs it serves.

A :class:`MetricsRegistry` renders two ways: :meth:`~MetricsRegistry.
snapshot` (a flat JSON-friendly dict, the existing ``/metrics``
payload) and :meth:`~MetricsRegistry.render_prom` (Prometheus text
exposition format, served at ``/metrics?format=prom``; histograms
render as summaries with ``quantile`` labels).  A tiny
:func:`validate_prom_text` linter backs the CI scrape check.

Everything is standard library and thread-safe at the instrument level.
"""

from __future__ import annotations

import math
import random
import re
import threading
import zlib
from typing import Callable, Dict, Iterable, List, Optional, Tuple

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry",
           "validate_prom_text"]

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


def _check_name(name: str) -> str:
    if not _NAME_RE.match(name):
        raise ValueError(f"invalid metric name {name!r}")
    return name


def _escape_label(value: str) -> str:
    return (str(value).replace("\\", "\\\\").replace('"', '\\"')
            .replace("\n", "\\n"))


def _format_value(value: float) -> str:
    if math.isnan(value):
        return "NaN"
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _labels_suffix(labels: Dict[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(f'{key}="{_escape_label(value)}"'
                     for key, value in sorted(labels.items()))
    return "{" + inner + "}"


class _Metric:
    """Shared naming/help plumbing for the three instrument kinds."""

    kind = "untyped"

    def __init__(self, name: str, help: str = "") -> None:  # noqa: A002
        self.name = _check_name(name)
        self.help = help
        self._lock = threading.Lock()

    def header_lines(self) -> List[str]:
        lines = []
        if self.help:
            lines.append(f"# HELP {self.name} {self.help}")
        lines.append(f"# TYPE {self.name} {self.kind}")
        return lines

    def render(self) -> List[str]:
        raise NotImplementedError

    def snapshot(self) -> Dict[str, float]:
        raise NotImplementedError


class Counter(_Metric):
    """Monotonic counter, optionally labelled along fixed label names."""

    kind = "counter"

    def __init__(self, name: str, help: str = "",  # noqa: A002
                 labelnames: Tuple[str, ...] = ()) -> None:
        super().__init__(name, help)
        for label in labelnames:
            if not _LABEL_RE.match(label):
                raise ValueError(f"invalid label name {label!r}")
        self.labelnames = tuple(labelnames)
        self._value = 0.0
        self._children: Dict[Tuple[str, ...], float] = {}

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        if self.labelnames:
            raise ValueError(f"{self.name} is labelled; use .labels()")
        with self._lock:
            self._value += amount

    def labels(self, **labels: str) -> "_LabelledCounter":
        if tuple(sorted(labels)) != tuple(sorted(self.labelnames)):
            raise ValueError(
                f"{self.name} takes labels {self.labelnames}, "
                f"got {tuple(labels)}")
        key = tuple(str(labels[name]) for name in self.labelnames)
        with self._lock:
            self._children.setdefault(key, 0.0)
        return _LabelledCounter(self, key)

    def _inc_child(self, key: Tuple[str, ...], amount: float) -> None:
        with self._lock:
            self._children[key] = self._children.get(key, 0.0) + amount

    @property
    def value(self) -> float:
        with self._lock:
            if self.labelnames:
                return sum(self._children.values())
            return self._value

    def child_value(self, **labels: str) -> float:
        key = tuple(str(labels[name]) for name in self.labelnames)
        with self._lock:
            return self._children.get(key, 0.0)

    def render(self) -> List[str]:
        with self._lock:
            if not self.labelnames:
                return [f"{self.name} {_format_value(self._value)}"]
            return [
                self.name
                + _labels_suffix(dict(zip(self.labelnames, key)))
                + f" {_format_value(value)}"
                for key, value in sorted(self._children.items())]

    def snapshot(self) -> Dict[str, float]:
        with self._lock:
            if not self.labelnames:
                return {self.name: self._value}
            return {f"{self.name}_{'_'.join(key)}": value
                    for key, value in sorted(self._children.items())}


class _LabelledCounter:
    """One labelled child of a :class:`Counter`."""

    __slots__ = ("_parent", "_key")

    def __init__(self, parent: Counter, key: Tuple[str, ...]) -> None:
        self._parent = parent
        self._key = key

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self._parent._inc_child(self._key, amount)

    @property
    def value(self) -> float:
        with self._parent._lock:
            return self._parent._children.get(self._key, 0.0)


class Gauge(_Metric):
    """Settable value, or a callback sampled at scrape time."""

    kind = "gauge"

    def __init__(self, name: str, help: str = "",  # noqa: A002
                 fn: Optional[Callable[[], float]] = None) -> None:
        super().__init__(name, help)
        self._fn = fn
        self._value = 0.0

    def set(self, value: float) -> None:
        if self._fn is not None:
            raise ValueError(f"{self.name} is callback-backed")
        with self._lock:
            self._value = float(value)

    @property
    def value(self) -> float:
        if self._fn is not None:
            try:
                return float(self._fn())
            except Exception:            # noqa: BLE001 - scrape boundary
                return float("nan")
        with self._lock:
            return self._value

    def render(self) -> List[str]:
        return [f"{self.name} {_format_value(self.value)}"]

    def snapshot(self) -> Dict[str, float]:
        return {self.name: self.value}


class Histogram(_Metric):
    """Bounded-reservoir histogram: O(1) memory, percentile queries.

    ``count``/``sum``/``min``/``max`` are exact over every observation;
    percentiles are nearest-rank over a ``reservoir_size``-sample
    uniform reservoir (Algorithm R), which is the textbook fix for the
    grow-forever latency lists a long-lived server otherwise
    accumulates.  The replacement RNG is seeded per instrument so runs
    are reproducible.
    """

    kind = "summary"

    def __init__(self, name: str, help: str = "",  # noqa: A002
                 reservoir_size: int = 512,
                 quantiles: Tuple[float, ...] = (0.5, 0.95)) -> None:
        super().__init__(name, help)
        if reservoir_size <= 0:
            raise ValueError("reservoir_size must be positive")
        self.reservoir_size = reservoir_size
        self.quantiles = quantiles
        self._samples: List[float] = []
        # crc32, not hash(): str hashing is per-process randomised, so
        # the promised "reproducible runs" only held within one process
        self._rng = random.Random(0x5EED ^ zlib.crc32(name.encode()))
        self._count = 0
        self._sum = 0.0
        self._min = math.inf
        self._max = -math.inf

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self._count += 1
            self._sum += value
            self._min = min(self._min, value)
            self._max = max(self._max, value)
            if len(self._samples) < self.reservoir_size:
                self._samples.append(value)
            else:
                slot = self._rng.randrange(self._count)
                if slot < self.reservoir_size:
                    self._samples[slot] = value

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    def percentile(self, q: float) -> float:
        """Nearest-rank percentile over the reservoir; 0.0 when empty."""
        with self._lock:
            if not self._samples:
                return 0.0
            ordered = sorted(self._samples)
            index = min(len(ordered) - 1,
                        int(round(q * (len(ordered) - 1))))
            return ordered[index]

    def render(self) -> List[str]:
        lines = [
            self.name + _labels_suffix({"quantile": str(q)})
            + f" {_format_value(self.percentile(q))}"
            for q in self.quantiles]
        with self._lock:
            lines.append(f"{self.name}_sum {_format_value(self._sum)}")
            lines.append(f"{self.name}_count {self._count}")
        return lines

    def snapshot(self) -> Dict[str, float]:
        data = {f"{self.name}_count": float(self.count),
                f"{self.name}_sum": self.sum}
        for q in self.quantiles:
            data[f"{self.name}_p{int(q * 100)}"] = self.percentile(q)
        return data


class MetricsRegistry:
    """Named instruments with idempotent registration.

    ``counter``/``gauge``/``histogram`` return the existing instrument
    when one with the same name is already registered (and raise on a
    kind mismatch), so independent components can share instruments by
    name without ordering constraints.
    """

    def __init__(self) -> None:
        self._metrics: Dict[str, _Metric] = {}
        self._lock = threading.Lock()

    def _register(self, metric_cls, name: str, *args, **kwargs):
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if not isinstance(existing, metric_cls):
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{existing.kind}")
                return existing
            metric = metric_cls(name, *args, **kwargs)
            self._metrics[name] = metric
            return metric

    def counter(self, name: str, help: str = "",  # noqa: A002
                labelnames: Tuple[str, ...] = ()) -> Counter:
        return self._register(Counter, name, help, labelnames)

    def gauge(self, name: str, help: str = "",  # noqa: A002
              fn: Optional[Callable[[], float]] = None) -> Gauge:
        return self._register(Gauge, name, help, fn)

    def histogram(self, name: str, help: str = "",  # noqa: A002
                  reservoir_size: int = 512,
                  quantiles: Tuple[float, ...] = (0.5, 0.95)) -> Histogram:
        return self._register(Histogram, name, help, reservoir_size,
                              quantiles)

    def get(self, name: str) -> Optional[_Metric]:
        with self._lock:
            return self._metrics.get(name)

    def __iter__(self) -> Iterable[_Metric]:
        with self._lock:
            return iter(sorted(self._metrics.values(),
                               key=lambda m: m.name))

    def snapshot(self) -> Dict[str, float]:
        """Flat ``{name: value}`` dict (the JSON ``/metrics`` view)."""
        data: Dict[str, float] = {}
        for metric in self:
            data.update(metric.snapshot())
        return data

    def render_prom(self) -> str:
        """Prometheus text exposition format, trailing newline included."""
        lines: List[str] = []
        for metric in self:
            lines.extend(metric.header_lines())
            lines.extend(metric.render())
        return "\n".join(lines) + "\n" if lines else ""


# ---------------------------------------------------------------------------
# text-format lint (backs the CI scrape check)
# ---------------------------------------------------------------------------

_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?P<labels>\{[^{}]*\})?"
    r" (?P<value>[-+]?(?:[0-9]*\.?[0-9]+(?:[eE][-+]?[0-9]+)?|Inf|NaN))"
    r"( [0-9]+)?$")
_LABEL_PAIR_RE = re.compile(
    r'^[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*"$')
_VALID_TYPES = ("counter", "gauge", "histogram", "summary", "untyped")


def validate_prom_text(text: str) -> List[str]:
    """Lint Prometheus text-format exposition; a list of problems.

    Checks line syntax, label-pair syntax, that ``# TYPE`` declarations
    precede their samples and are not repeated, and that declared
    metric types are real.  An empty return value means the text is
    well-formed (it does not prove a real Prometheus server would
    ingest it — this is a guard rail, not a conformance suite).
    """
    problems: List[str] = []
    typed: Dict[str, str] = {}
    sampled: set = set()
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) < 3 or parts[1] not in ("HELP", "TYPE"):
                problems.append(f"line {lineno}: malformed comment "
                                f"(expected # HELP/# TYPE): {line!r}")
                continue
            if not _NAME_RE.match(parts[2]):
                problems.append(
                    f"line {lineno}: invalid metric name {parts[2]!r}")
                continue
            if parts[1] == "TYPE":
                if len(parts) != 4 or parts[3] not in _VALID_TYPES:
                    problems.append(
                        f"line {lineno}: invalid TYPE for {parts[2]}")
                elif parts[2] in typed:
                    problems.append(
                        f"line {lineno}: duplicate TYPE for {parts[2]}")
                elif parts[2] in sampled:
                    problems.append(
                        f"line {lineno}: TYPE for {parts[2]} after its "
                        "samples")
                else:
                    typed[parts[2]] = parts[3]
            continue
        match = _SAMPLE_RE.match(line)
        if match is None:
            problems.append(f"line {lineno}: malformed sample: {line!r}")
            continue
        labels = match.group("labels")
        if labels:
            body = labels[1:-1].strip()
            if body:
                for pair in body.split(","):
                    if not _LABEL_PAIR_RE.match(pair.strip()):
                        problems.append(
                            f"line {lineno}: malformed label pair "
                            f"{pair.strip()!r}")
        sampled.add(match.group("name"))
        base = re.sub(r"_(sum|count|bucket|total)$", "",
                      match.group("name"))
        sampled.add(base)
    return problems
