"""Structured JSON-lines run journal.

Every interesting lifecycle moment — a simulation starting or
finishing, a cache hit or miss, a job moving through the service queue,
a worker crash — is one JSON object on its own line, so a run's journal
can be tailed, grepped, or post-processed (``repro events
tail|summarize``) without any log-parsing heuristics.

The journal destination is resolved from the environment once per
process:

* ``REPRO_LOG_DIR=<dir>`` — append to ``<dir>/events.jsonl``.  Writes
  are single ``write`` calls on a file opened in append mode per event,
  so the CLI, the HTTP server, and every worker subprocess can share
  one journal file safely (POSIX ``O_APPEND`` semantics); one
  distributed run lands in one file.
* ``REPRO_LOG=stderr`` — write events to stderr (ad-hoc debugging).
* neither — the journal is disabled and :meth:`EventJournal.emit`
  returns immediately; the instrumented code paths cost one truthiness
  check.

Record schema (``SCHEMA_VERSION``): every event carries ``v`` (schema
version), ``ts`` (Unix seconds), ``kind``, ``pid``, and — whenever a
:mod:`~repro.obs.tracing` span is active or IDs are passed explicitly —
``trace_id``/``span_id``.  Remaining keys are per-kind payload.  The
schema is append-only: adding keys is fine, renaming or retyping the
core keys requires a version bump (there is a golden fixture test
pinning this).
"""

from __future__ import annotations

import io
import json
import os
import sys
import threading
import time
from typing import Any, Dict, Iterator, Optional, TextIO

from .tracing import current_context

__all__ = ["EventJournal", "SCHEMA_VERSION", "LOG_DIR_ENV_VAR",
           "LOG_ENV_VAR", "JOURNAL_FILENAME", "configure_journal",
           "get_journal", "journal_path_from_env", "read_events"]

#: bump on any backwards-incompatible change to the core record keys
SCHEMA_VERSION = 1

#: environment variable naming the journal directory
LOG_DIR_ENV_VAR = "REPRO_LOG_DIR"

#: environment variable selecting a non-file sink (``stderr``) or ``off``
LOG_ENV_VAR = "REPRO_LOG"

#: journal file name inside ``REPRO_LOG_DIR``
JOURNAL_FILENAME = "events.jsonl"


def journal_path_from_env() -> Optional[str]:
    """The journal file path implied by ``REPRO_LOG_DIR``, or None."""
    root = os.environ.get(LOG_DIR_ENV_VAR)
    if not root:
        return None
    return os.path.join(root, JOURNAL_FILENAME)


class EventJournal:
    """One process's journal writer.

    Parameters
    ----------
    path:
        Journal file (appended to, created with its directory on first
        emit).  Mutually exclusive with ``stream``.
    stream:
        Text stream to write events to (e.g. ``sys.stderr``).

    With neither, the journal is disabled and ``emit`` is a no-op.
    """

    def __init__(self, path: Optional[str] = None,
                 stream: Optional[TextIO] = None) -> None:
        if path and stream:
            raise ValueError("give either a path or a stream, not both")
        self.path = path or None
        self.stream = stream
        self._lock = threading.Lock()
        self._dir_ready = False
        self.emitted = 0
        self.dropped = 0

    @property
    def enabled(self) -> bool:
        return self.path is not None or self.stream is not None

    def emit(self, kind: str, trace_id: Optional[str] = None,
             span_id: Optional[str] = None, **fields: Any) -> None:
        """Append one event; never raises (a journal must not take the
        workload down with it — write failures count in ``dropped``)."""
        if not self.enabled:
            return
        if trace_id is None:
            context = current_context()
            if context is not None:
                trace_id = context.trace_id
                if span_id is None:
                    span_id = context.span_id
        record: Dict[str, Any] = {
            "v": SCHEMA_VERSION,
            "ts": round(time.time(), 6),
            "kind": kind,
            "pid": os.getpid(),
        }
        if trace_id is not None:
            record["trace_id"] = trace_id
        if span_id is not None:
            record["span_id"] = span_id
        for key, value in fields.items():
            if value is not None:
                record[key] = value
        try:
            line = json.dumps(record, separators=(",", ":"),
                              default=str) + "\n"
        except (TypeError, ValueError):
            self.dropped += 1
            return
        with self._lock:
            try:
                if self.stream is not None:
                    self.stream.write(line)
                else:
                    # open-per-emit keeps the fd unshared across forked
                    # workers; one O_APPEND write per event is atomic
                    # enough for line-oriented consumers
                    if not self._dir_ready:
                        parent = os.path.dirname(self.path)
                        if parent:
                            os.makedirs(parent, exist_ok=True)
                        self._dir_ready = True
                    with open(self.path, "a", encoding="utf-8") as handle:
                        handle.write(line)
                self.emitted += 1
            except (OSError, ValueError):
                self.dropped += 1


_DISABLED = EventJournal()
_journal: Optional[EventJournal] = None
_journal_lock = threading.Lock()


def get_journal() -> EventJournal:
    """The process-wide journal, resolved from the environment once.

    ``REPRO_LOG_DIR`` wins; ``REPRO_LOG=stderr`` is the fallback sink;
    otherwise the shared disabled journal is returned.  A forked or
    spawned worker resolves independently from its inherited
    environment, so a distributed run converges on one journal file.
    """
    global _journal
    if _journal is None:
        with _journal_lock:
            if _journal is None:
                path = journal_path_from_env()
                if path:
                    _journal = EventJournal(path=path)
                elif os.environ.get(LOG_ENV_VAR, "").lower() == "stderr":
                    _journal = EventJournal(stream=sys.stderr)
                else:
                    _journal = _DISABLED
    return _journal


def configure_journal(path: Optional[str] = None,
                      stream: Optional[TextIO] = None) -> EventJournal:
    """Install an explicit process journal (tests, embedding).

    With no arguments the journal is reset, and the next
    :func:`get_journal` re-resolves from the environment.
    """
    global _journal
    with _journal_lock:
        if path is None and stream is None:
            _journal = None
            return _DISABLED
        _journal = EventJournal(path=path, stream=stream)
        return _journal


def read_events(source) -> Iterator[Dict[str, Any]]:
    """Parsed events from a journal path or open text stream.

    Corrupt or truncated lines (a process died mid-write) are skipped,
    not raised — a journal is diagnostic data, never a failure source.
    """
    if isinstance(source, (str, os.PathLike)):
        with open(source, encoding="utf-8") as handle:
            yield from read_events(handle)
        return
    assert isinstance(source, io.TextIOBase) or hasattr(source, "__iter__")
    for line in source:
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except ValueError:
            continue
        if isinstance(record, dict) and "kind" in record:
            yield record
