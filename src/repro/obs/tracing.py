"""Span tracing across the CLI, the HTTP service, and worker processes.

One logical request — ``repro compare --server`` say — fans out into an
HTTP batch submission, per-job queue traffic, and simulations in worker
subprocesses.  This module gives all of those a shared *trace*: a
trace ID minted once at the entry point (the CLI command or a bare
:class:`~repro.service.client.ServiceClient`), plus a parent-linked
*span* per unit of work.  Everything the
:class:`~repro.obs.events.EventJournal` records while a span is active
carries the active trace/span IDs, so one journal reconstructs the
whole distributed request.

Propagation is explicit at each process boundary:

* **threads** — the active context is thread-local; :func:`span` and
  :func:`activate` push/pop on the calling thread only.
* **HTTP** — :func:`trace_headers` serialises the context into
  ``X-Repro-Trace-Id`` / ``X-Repro-Span-Id`` request headers;
  :func:`context_from_headers` recovers it server-side.
* **subprocesses** — a :class:`SpanContext` is picklable; pass it to
  the child (worker pool initargs, fork args) and ``activate`` it
  there.

Everything is standard library and allocation-light; with no journal
configured a span costs two ``perf_counter`` calls and a dataclass.
"""

from __future__ import annotations

import threading
import time
import uuid
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Dict, Iterator, Mapping, Optional

__all__ = ["SpanContext", "TRACE_HEADER", "SPAN_HEADER", "activate",
           "context_from_headers", "current_context", "new_span_id",
           "new_trace_id", "span", "trace_headers"]

#: HTTP request headers carrying the context across the service boundary
TRACE_HEADER = "X-Repro-Trace-Id"
SPAN_HEADER = "X-Repro-Span-Id"


@dataclass(frozen=True)
class SpanContext:
    """The active (trace, span) pair; picklable for process hand-off."""

    trace_id: str
    span_id: str


_local = threading.local()


def new_trace_id() -> str:
    """A fresh 32-hex-char trace ID."""
    return uuid.uuid4().hex


def new_span_id() -> str:
    """A fresh 16-hex-char span ID."""
    return uuid.uuid4().hex[:16]


def current_context() -> Optional[SpanContext]:
    """The calling thread's active context, or None outside any span."""
    stack = getattr(_local, "stack", None)
    return stack[-1] if stack else None


def _push(context: SpanContext) -> None:
    stack = getattr(_local, "stack", None)
    if stack is None:
        stack = _local.stack = []
    stack.append(context)


def _pop() -> None:
    _local.stack.pop()


@contextmanager
def activate(context: Optional[SpanContext]) -> Iterator[None]:
    """Install a remote context (from headers, a job record, or a parent
    process) as the calling thread's active context.

    ``None`` is accepted and is a no-op, so call sites can pass whatever
    :func:`context_from_headers` returned without branching.
    """
    if context is None:
        yield
        return
    _push(context)
    try:
        yield
    finally:
        _pop()


@contextmanager
def span(name: str, **attrs: Any) -> Iterator[SpanContext]:
    """Open a span named ``name``; yields its :class:`SpanContext`.

    The span joins the calling thread's active trace (starting a new
    trace when there is none), becomes the active context for its
    duration, and on exit emits one ``span`` event — name, trace/span/
    parent IDs, wall-clock seconds, ``status`` (``"ok"`` or
    ``"error"``), and any keyword attributes — to the process journal.
    """
    from .events import get_journal
    parent = current_context()
    context = SpanContext(
        parent.trace_id if parent else new_trace_id(), new_span_id())
    _push(context)
    start = time.perf_counter()
    status = "ok"
    try:
        yield context
    except BaseException:
        status = "error"
        raise
    finally:
        _pop()
        get_journal().emit(
            "span", trace_id=context.trace_id, span_id=context.span_id,
            parent_span_id=parent.span_id if parent else None,
            name=name, seconds=time.perf_counter() - start,
            status=status, **attrs)


def trace_headers(context: Optional[SpanContext] = None) -> Dict[str, str]:
    """HTTP headers carrying ``context`` (default: the active one).

    Empty when there is nothing to propagate, so the result can be
    merged into a request's headers unconditionally.
    """
    context = context or current_context()
    if context is None:
        return {}
    return {TRACE_HEADER: context.trace_id, SPAN_HEADER: context.span_id}


def context_from_headers(headers: Mapping[str, str]
                         ) -> Optional[SpanContext]:
    """Recover a :class:`SpanContext` from request headers, or None.

    Accepts any case-insensitive mapping (``http.server`` hands one
    over); a trace ID without a span ID still yields a context so the
    trace is not lost to a sloppy client.
    """
    trace_id = headers.get(TRACE_HEADER)
    if not trace_id:
        return None
    return SpanContext(trace_id, headers.get(SPAN_HEADER) or new_span_id())
