"""Opt-in per-cycle simulator sampling.

:class:`PipelineSampler` is a pipeline observer (attach with
``pipeline.add_observer(sampler.observe)``, exactly like
:class:`~repro.power.tracing.PowerTraceRecorder`) that accumulates
occupancy and gating-activity histograms while a simulation runs:

* issue-width distribution (how many ops issued per cycle),
* window and LSQ occupancy distributions (bucketed),
* gated block-cycles per family (FU / latch / D-cache / result bus),
* FU busy-unit distribution per cycle.

Nothing in the simulator hot path changes when sampling is off: the
pipeline's observer list is simply one entry shorter, which is the
pre-existing disabled cost.  Enable it for grid runs by setting
``REPRO_SAMPLE=1`` — :func:`~repro.sim.parallel.simulate_spec` then
attaches a sampler per run and emits its summary as one ``sim.sample``
journal event (the histograms travel with the run's trace).
"""

from __future__ import annotations

import os
from typing import Any, Dict, List

from ..core.interface import GateDecision
from ..pipeline.usage import CycleUsage

__all__ = ["PipelineSampler", "SAMPLE_ENV_VAR", "sampling_enabled"]

#: environment variable opting grid simulations into per-cycle sampling
SAMPLE_ENV_VAR = "REPRO_SAMPLE"

#: window/LSQ occupancy bucket upper bounds (last bucket is open-ended)
_OCCUPANCY_EDGES = (0, 4, 8, 16, 32, 64, 128)


def sampling_enabled() -> bool:
    """True when ``REPRO_SAMPLE`` asks for per-cycle sampling."""
    value = os.environ.get(SAMPLE_ENV_VAR, "").lower()
    return value not in ("", "0", "off", "false")


def _bucket_index(value: int) -> int:
    for index, edge in enumerate(_OCCUPANCY_EDGES):
        if value <= edge:
            return index
    return len(_OCCUPANCY_EDGES)


def _bucket_labels() -> List[str]:
    labels = [f"<={edge}" for edge in _OCCUPANCY_EDGES]
    labels.append(f">{_OCCUPANCY_EDGES[-1]}")
    return labels


class PipelineSampler:
    """Accumulates per-cycle occupancy/gating histograms.

    The observe path is deliberately cheap — list indexing and integer
    adds only — because it runs once per simulated cycle when enabled.
    """

    def __init__(self) -> None:
        self.cycles = 0
        # issue counts are small (machine issue width); grow on demand
        self._issued: List[int] = [0] * 9
        self._window = [0] * (len(_OCCUPANCY_EDGES) + 1)
        self._lsq = [0] * (len(_OCCUPANCY_EDGES) + 1)
        self._fu_busy: List[int] = [0] * 17
        self.fetch_stall_cycles = 0
        self.gated_block_cycles: Dict[str, int] = {
            "fu": 0, "latch": 0, "dcache": 0, "result_bus": 0}
        self.fu_toggle_events = 0

    def observe(self, usage: CycleUsage, decision: GateDecision) -> None:
        self.cycles += 1
        issued = usage.issued
        if issued >= len(self._issued):
            self._issued.extend([0] * (issued - len(self._issued) + 1))
        self._issued[issued] += 1
        self._window[_bucket_index(usage.window_occupancy)] += 1
        self._lsq[_bucket_index(usage.lsq_occupancy)] += 1
        busy = 0
        for mask in usage.fu_active.values():
            busy += sum(mask)
        if busy >= len(self._fu_busy):
            self._fu_busy.extend([0] * (busy - len(self._fu_busy) + 1))
        self._fu_busy[busy] += 1
        if usage.fetch_stalled:
            self.fetch_stall_cycles += 1
        gated = self.gated_block_cycles
        for count in decision.fu_gated.values():
            gated["fu"] += count
        gated["latch"] += decision.latch_gated_slots
        gated["dcache"] += decision.dcache_ports_gated
        gated["result_bus"] += decision.result_buses_gated
        self.fu_toggle_events += decision.fu_toggle_events

    # -- reporting --------------------------------------------------------

    def summary(self) -> Dict[str, Any]:
        """JSON-encodable histogram bundle for a ``sim.sample`` event."""

        def trimmed(counts: List[int]) -> Dict[str, int]:
            return {str(i): c for i, c in enumerate(counts) if c}

        labels = _bucket_labels()
        return {
            "cycles": self.cycles,
            "issued_hist": trimmed(self._issued),
            "fu_busy_hist": trimmed(self._fu_busy),
            "window_occupancy_hist": {
                labels[i]: c for i, c in enumerate(self._window) if c},
            "lsq_occupancy_hist": {
                labels[i]: c for i, c in enumerate(self._lsq) if c},
            "fetch_stall_cycles": self.fetch_stall_cycles,
            "gated_block_cycles": dict(self.gated_block_cycles),
            "fu_toggle_events": self.fu_toggle_events,
        }
