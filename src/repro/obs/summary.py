"""Turn a run journal into human-readable summaries.

Backs the ``repro events tail`` and ``repro events summarize`` CLI
subcommands: ``tail`` pretty-prints the last N events one per line;
``summarize`` aggregates a whole journal into per-spec wall-clock,
cache hit/miss counts, job lifecycle totals, and failure details —
the numbers an operator would otherwise scrape from ``/metrics``,
reconstructed offline from the journal alone.
"""

from __future__ import annotations

import time
from collections import Counter
from typing import Any, Dict, Iterable, List, Optional

from .events import read_events

__all__ = ["format_event_line", "format_summary", "summarize_events",
           "summarize_journal", "tail_events"]

#: event keys rendered by the journal itself, not per-kind payload
_CORE_KEYS = ("v", "ts", "kind", "pid", "trace_id", "span_id")


def _spec_label(event: Dict[str, Any]) -> str:
    label = f"{event.get('benchmark', '?')}/{event.get('policy', '?')}"
    tag = event.get("tag")
    if tag and tag != "baseline":
        label += f"@{tag}"
    return label


def summarize_events(events: Iterable[Dict[str, Any]]) -> Dict[str, Any]:
    """Aggregate parsed events into a summary dict.

    Keys: ``events`` (total), ``kinds`` (per-kind counts), ``traces``
    (distinct trace IDs), ``first_ts``/``last_ts``, ``sims`` (per-spec
    ``{count, seconds}`` from ``sim.finish``), ``cache`` (hit/miss
    totals and per-layer hits), ``jobs`` (lifecycle counters), and
    ``failures`` (one record per ``job.fail``/``sim.error``).
    """
    kinds: Counter = Counter()
    traces = set()
    sims: Dict[str, Dict[str, float]] = {}
    cache = {"hits": 0, "misses": 0, "hits_memory": 0, "hits_disk": 0}
    jobs = {"enqueued": 0, "deduped": 0, "dequeued": 0, "completed": 0,
            "failed": 0, "retried": 0, "timed_out": 0, "requeued": 0,
            "crashes": 0}
    failures: List[Dict[str, Any]] = []
    first_ts: Optional[float] = None
    last_ts: Optional[float] = None
    total = 0
    for event in events:
        total += 1
        kind = event["kind"]
        kinds[kind] += 1
        trace_id = event.get("trace_id")
        if trace_id:
            traces.add(trace_id)
        ts = event.get("ts")
        if isinstance(ts, (int, float)):
            first_ts = ts if first_ts is None else min(first_ts, ts)
            last_ts = ts if last_ts is None else max(last_ts, ts)
        if kind == "sim.finish":
            entry = sims.setdefault(_spec_label(event),
                                    {"count": 0, "seconds": 0.0})
            entry["count"] += 1
            entry["seconds"] += float(event.get("seconds", 0.0))
        elif kind == "cache.hit":
            cache["hits"] += 1
            layer = event.get("layer")
            if layer in ("memory", "disk"):
                cache[f"hits_{layer}"] += 1
        elif kind == "cache.miss":
            cache["misses"] += 1
        elif kind == "job.enqueue":
            jobs["deduped" if event.get("deduped") else "enqueued"] += 1
        elif kind == "job.dequeue":
            jobs["dequeued"] += 1
        elif kind == "job.complete":
            jobs["completed"] += 1
        elif kind == "job.fail":
            jobs["failed"] += 1
            failures.append({
                "job_id": event.get("job_id"),
                "spec": _spec_label(event),
                "error": event.get("error"),
                "trace_id": trace_id,
            })
        elif kind == "sim.error":
            failures.append({
                "job_id": event.get("job_id"),
                "spec": _spec_label(event),
                "error": event.get("error"),
                "trace_id": trace_id,
            })
        elif kind == "job.retry":
            jobs["retried"] += 1
        elif kind == "job.timeout":
            jobs["timed_out"] += 1
        elif kind == "job.requeue":
            jobs["requeued"] += 1
        elif kind == "worker.crash":
            jobs["crashes"] += 1
    return {
        "events": total,
        "kinds": dict(sorted(kinds.items())),
        "traces": sorted(traces),
        "first_ts": first_ts,
        "last_ts": last_ts,
        "sims": sims,
        "cache": cache,
        "jobs": jobs,
        "failures": failures,
    }


def summarize_journal(path: str) -> Dict[str, Any]:
    """:func:`summarize_events` over a journal file."""
    return summarize_events(read_events(path))


def format_summary(summary: Dict[str, Any]) -> str:
    """Render a :func:`summarize_events` dict as a terminal report."""
    lines: List[str] = []
    span = ""
    if summary["first_ts"] is not None:
        span = f" over {summary['last_ts'] - summary['first_ts']:.2f}s"
    lines.append(f"{summary['events']} events, "
                 f"{len(summary['traces'])} trace(s){span}")
    if summary["sims"]:
        total_runs = sum(e["count"] for e in summary["sims"].values())
        total_secs = sum(e["seconds"] for e in summary["sims"].values())
        lines.append(f"simulations: {total_runs} run(s), "
                     f"{total_secs:.2f}s simulated wall-clock")
        for label, entry in sorted(summary["sims"].items()):
            lines.append(f"  {label:32s} {entry['count']:4d} run(s) "
                         f"{entry['seconds']:8.2f}s")
    cache = summary["cache"]
    if cache["hits"] or cache["misses"]:
        lines.append(f"cache: {cache['hits']} hit(s) "
                     f"({cache['hits_memory']} memory, "
                     f"{cache['hits_disk']} disk), "
                     f"{cache['misses']} miss(es)")
    jobs = summary["jobs"]
    if any(jobs.values()):
        lines.append(
            f"jobs: {jobs['enqueued']} enqueued "
            f"(+{jobs['deduped']} deduped), {jobs['dequeued']} dequeued, "
            f"{jobs['completed']} completed, {jobs['failed']} failed")
        if (jobs["retried"] or jobs["timed_out"] or jobs["requeued"]
                or jobs["crashes"]):
            lines.append(
                f"      {jobs['retried']} retried, "
                f"{jobs['timed_out']} timed out, "
                f"{jobs['requeued']} requeued, "
                f"{jobs['crashes']} worker crash(es)")
    for failure in summary["failures"]:
        lines.append(f"FAILED {failure['spec']} "
                     f"(job {failure['job_id'] or '?'}): "
                     f"{failure['error'] or 'unknown error'}")
    return "\n".join(lines)


def format_event_line(event: Dict[str, Any]) -> str:
    """One journal event as a compact, aligned terminal line."""
    ts = event.get("ts")
    stamp = (time.strftime("%H:%M:%S", time.localtime(ts))
             + f".{int((ts % 1) * 1000):03d}"
             if isinstance(ts, (int, float)) else "--:--:--.---")
    trace = (event.get("trace_id") or "")[:8] or "-"
    payload = " ".join(
        f"{key}={event[key]}" for key in event
        if key not in _CORE_KEYS and not isinstance(event[key], dict))
    return f"{stamp} {event['kind']:14s} trace={trace:8s} {payload}".rstrip()


def tail_events(path: str, count: int = 20) -> List[Dict[str, Any]]:
    """The last ``count`` events of a journal (whole-file read; journals
    are line-oriented and modest in size)."""
    events = list(read_events(path))
    return events[-count:] if count > 0 else events
