"""Unified observability layer: journal, tracing, metrics, sampling.

The subsystem the rest of the repo reports through:

* :mod:`~repro.obs.events` — structured JSON-lines run journal
  (``REPRO_LOG_DIR`` / ``REPRO_LOG=stderr``; disabled by default).
* :mod:`~repro.obs.tracing` — trace/span IDs propagated CLI → HTTP
  service → worker subprocess, so one command yields one trace.
* :mod:`~repro.obs.metrics` — Prometheus-style registry (counters,
  gauges, bounded-reservoir histograms) behind the service's
  ``/metrics`` and ``/metrics?format=prom``.
* :mod:`~repro.obs.sampling` — opt-in per-cycle occupancy/gating
  histograms (``REPRO_SAMPLE=1``), off the hot path when disabled.
* :mod:`~repro.obs.summary` — journal post-processing for
  ``repro events tail|summarize``.

Everything is standard library; with no environment configuration the
whole layer is inert.
"""

from .events import (EventJournal, JOURNAL_FILENAME, LOG_DIR_ENV_VAR,
                     LOG_ENV_VAR, SCHEMA_VERSION, configure_journal,
                     get_journal, journal_path_from_env, read_events)
from .metrics import (Counter, Gauge, Histogram, MetricsRegistry,
                      validate_prom_text)
from .sampling import PipelineSampler, SAMPLE_ENV_VAR, sampling_enabled
from .summary import (format_event_line, format_summary, summarize_events,
                      summarize_journal, tail_events)
from .tracing import (SPAN_HEADER, SpanContext, TRACE_HEADER, activate,
                      context_from_headers, current_context, new_span_id,
                      new_trace_id, span, trace_headers)

__all__ = [
    "Counter",
    "EventJournal",
    "Gauge",
    "Histogram",
    "JOURNAL_FILENAME",
    "LOG_DIR_ENV_VAR",
    "LOG_ENV_VAR",
    "MetricsRegistry",
    "PipelineSampler",
    "SAMPLE_ENV_VAR",
    "SCHEMA_VERSION",
    "SPAN_HEADER",
    "SpanContext",
    "TRACE_HEADER",
    "activate",
    "configure_journal",
    "context_from_headers",
    "current_context",
    "format_event_line",
    "format_summary",
    "get_journal",
    "journal_path_from_env",
    "new_span_id",
    "new_trace_id",
    "read_events",
    "sampling_enabled",
    "span",
    "summarize_events",
    "summarize_journal",
    "tail_events",
    "trace_headers",
    "validate_prom_text",
]
