"""Memory hierarchy: set-associative caches and main memory."""

from .cache import Cache, CacheStats, MemoryLevel
from .hierarchy import CacheConfig, CacheHierarchy, HierarchyConfig
from .main_memory import MainMemory

__all__ = [
    "Cache",
    "CacheConfig",
    "CacheHierarchy",
    "CacheStats",
    "HierarchyConfig",
    "MainMemory",
    "MemoryLevel",
]
