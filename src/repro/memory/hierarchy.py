"""Cache hierarchy assembly (L1 I/D, shared L2, main memory)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from .cache import Cache
from .main_memory import MainMemory

__all__ = ["CacheConfig", "HierarchyConfig", "CacheHierarchy"]


@dataclass(frozen=True)
class CacheConfig:
    """Geometry + latency for one cache level."""

    size_bytes: int
    assoc: int
    line_bytes: int
    hit_latency: int
    ports: int = 1


@dataclass(frozen=True)
class HierarchyConfig:
    """Table 1 memory system: 64KB 2-way 2-cycle L1 I/D, 2MB 8-way
    12-cycle L2, 100-cycle main memory."""

    l1i: CacheConfig = CacheConfig(64 * 1024, 2, 64, 2)
    l1d: CacheConfig = CacheConfig(64 * 1024, 2, 64, 2, ports=2)
    l2: CacheConfig = CacheConfig(2 * 1024 * 1024, 8, 64, 12)
    memory_latency: int = 100
    bus_bytes: int = 32


class CacheHierarchy:
    """Instantiated memory system shared by the timing pipeline."""

    def __init__(self, config: HierarchyConfig = HierarchyConfig()) -> None:
        self.config = config
        self.memory = MainMemory(latency=config.memory_latency,
                                 bus_bytes=config.bus_bytes,
                                 transfer_bytes=config.l2.line_bytes)
        self.l2 = Cache("L2", config.l2.size_bytes, config.l2.assoc,
                        config.l2.line_bytes, config.l2.hit_latency,
                        parent=self.memory)
        self.l1i = Cache("L1I", config.l1i.size_bytes, config.l1i.assoc,
                         config.l1i.line_bytes, config.l1i.hit_latency,
                         parent=self.l2)
        self.l1d = Cache("L1D", config.l1d.size_bytes, config.l1d.assoc,
                         config.l1d.line_bytes, config.l1d.hit_latency,
                         parent=self.l2)

    @property
    def dcache_ports(self) -> int:
        return self.config.l1d.ports

    def load(self, addr: int) -> int:
        """Data-load latency in cycles."""
        return self.l1d.access(addr, is_write=False)

    def store(self, addr: int) -> int:
        """Data-store latency in cycles."""
        return self.l1d.access(addr, is_write=True)

    def fetch(self, addr: int) -> int:
        """Instruction-fetch latency in cycles."""
        return self.l1i.access(addr, is_write=False)

    def prewarm_data_region(self, base: int, size: int,
                            into_l1: bool = False) -> None:
        """Install a data region in the L2 (and optionally L1D).

        Models the cache state left behind by the paper's 2-billion-
        instruction fast-forward: the resident working set is already
        cached when measurement starts.
        """
        line = self.l2.line_bytes
        for addr in range(base, base + size, line):
            self.l2.preload(addr)
            if into_l1:
                self.l1d.preload(addr)

    def stats_table(self) -> Dict[str, Dict[str, float]]:
        """Nested dict of per-level hit/miss statistics."""
        out: Dict[str, Dict[str, float]] = {}
        for cache in (self.l1i, self.l1d, self.l2):
            out[cache.name] = {
                "accesses": cache.stats.accesses,
                "hits": cache.stats.hits,
                "misses": cache.stats.misses,
                "miss_rate": cache.stats.miss_rate,
                "writebacks": cache.stats.writebacks,
            }
        out["memory"] = {"accesses": self.memory.accesses}
        return out
