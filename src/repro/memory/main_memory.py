"""Main memory timing model.

The paper's Table 1: infinite capacity, 100-cycle latency, split
transactions over a 32-byte bus.  We model a fixed access latency plus a
simple bus-occupancy term for wide lines (a 64-byte line needs two
32-byte bus beats).
"""

from __future__ import annotations

from .cache import MemoryLevel

__all__ = ["MainMemory"]


class MainMemory(MemoryLevel):
    """Flat DRAM model with fixed latency.

    Parameters
    ----------
    latency:
        Cycles from request to first data.
    bus_bytes:
        Bus width; each additional ``bus_bytes`` chunk of the transfer
        adds one cycle of occupancy.
    transfer_bytes:
        Bytes moved per access (one L2 line).
    """

    def __init__(self, latency: int = 100, bus_bytes: int = 32,
                 transfer_bytes: int = 64) -> None:
        if latency < 0:
            raise ValueError("latency must be non-negative")
        if bus_bytes <= 0 or transfer_bytes <= 0:
            raise ValueError("bus widths must be positive")
        self.name = "memory"
        self.latency = latency
        self.bus_bytes = bus_bytes
        self.transfer_bytes = transfer_bytes
        self.accesses = 0

    @property
    def transfer_cycles(self) -> int:
        """Bus beats beyond the first needed to move one line."""
        beats = (self.transfer_bytes + self.bus_bytes - 1) // self.bus_bytes
        return max(0, beats - 1)

    def access(self, addr: int, is_write: bool = False) -> int:
        self.accesses += 1
        return self.latency + self.transfer_cycles
