"""Set-associative cache timing model.

Latency-oriented (no data storage): an access returns the number of
cycles until the requested word is available, walking misses down to the
next level.  Replacement is true LRU per set; writes allocate and mark
lines dirty (write-back, for traffic statistics).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

__all__ = ["CacheStats", "Cache", "MemoryLevel"]


class MemoryLevel:
    """Interface for anything a cache can miss to."""

    name: str = "memory-level"

    def access(self, addr: int, is_write: bool = False) -> int:
        """Cycles until the word at ``addr`` is available."""
        raise NotImplementedError


@dataclass
class CacheStats:
    """Per-cache access counters."""

    hits: int = 0
    misses: int = 0
    writebacks: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def miss_rate(self) -> float:
        total = self.accesses
        return self.misses / total if total else 0.0


class _Line:
    __slots__ = ("tag", "dirty")

    def __init__(self, tag: int) -> None:
        self.tag = tag
        self.dirty = False


class Cache(MemoryLevel):
    """One level of set-associative, LRU, write-back/write-allocate cache.

    Parameters
    ----------
    name:
        Label used in statistics reports.
    size_bytes / assoc / line_bytes:
        Geometry; ``size_bytes`` must be divisible by
        ``assoc * line_bytes`` and ``line_bytes`` a power of two.
    hit_latency:
        Total cycles for a hit in this level (absolute, not additive on
        top of lower levels — matching the paper's Table 1 convention:
        L1 2 cycles, L2 12 cycles, memory 100 cycles).
    parent:
        Next level to access on a miss; ``None`` makes misses cost only
        ``hit_latency`` (useful in unit tests).
    """

    def __init__(self, name: str, size_bytes: int, assoc: int,
                 line_bytes: int, hit_latency: int,
                 parent: Optional[MemoryLevel] = None) -> None:
        if line_bytes <= 0 or line_bytes & (line_bytes - 1):
            raise ValueError("line_bytes must be a power of two")
        if assoc <= 0:
            raise ValueError("assoc must be positive")
        if size_bytes % (assoc * line_bytes) != 0:
            raise ValueError("size must be divisible by assoc * line_bytes")
        self.name = name
        self.size_bytes = size_bytes
        self.assoc = assoc
        self.line_bytes = line_bytes
        self.hit_latency = hit_latency
        self.parent = parent
        self.num_sets = size_bytes // (assoc * line_bytes)
        self.stats = CacheStats()
        # each set is an insertion-ordered dict tag -> line; the first
        # entry is least recently used
        self._sets: List[Dict[int, _Line]] = [dict() for _ in range(self.num_sets)]

    # -- geometry helpers -----------------------------------------------------

    def _index_tag(self, addr: int) -> "tuple[int, int]":
        line_addr = addr // self.line_bytes
        return line_addr % self.num_sets, line_addr // self.num_sets

    def contains(self, addr: int) -> bool:
        """True when the line holding ``addr`` is resident (no side effects)."""
        index, tag = self._index_tag(addr)
        return tag in self._sets[index]

    # -- access ------------------------------------------------------------

    def access(self, addr: int, is_write: bool = False) -> int:
        index, tag = self._index_tag(addr)
        lines = self._sets[index]
        line = lines.get(tag)
        if line is not None:
            # LRU update: move to most-recently-used position
            del lines[tag]
            lines[tag] = line
            if is_write:
                line.dirty = True
            self.stats.hits += 1
            return self.hit_latency
        self.stats.misses += 1
        miss_latency = self.hit_latency
        if self.parent is not None:
            miss_latency = self.parent.access(addr, is_write=False)
        if len(lines) >= self.assoc:
            victim_tag = next(iter(lines))
            victim = lines.pop(victim_tag)
            if victim.dirty:
                self.stats.writebacks += 1
        new_line = _Line(tag)
        new_line.dirty = is_write
        lines[tag] = new_line
        return miss_latency

    def preload(self, addr: int) -> None:
        """Install the line holding ``addr`` without touching statistics.

        Used to warm caches before measurement, standing in for the
        paper's 2-billion-instruction fast-forward period.
        """
        index, tag = self._index_tag(addr)
        lines = self._sets[index]
        if tag in lines:
            return
        if len(lines) >= self.assoc:
            lines.pop(next(iter(lines)))
        lines[tag] = _Line(tag)

    def flush(self) -> None:
        """Invalidate every line (keeps statistics)."""
        for lines in self._sets:
            lines.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<Cache {self.name} {self.size_bytes // 1024}KB "
                f"{self.assoc}-way {self.line_bytes}B lines>")
