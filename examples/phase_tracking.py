#!/usr/bin/env python3
"""Program phases: PLB's tracking lag vs DCG's indifference.

Splices a high-ILP phase (gzip-like) and a stall-bound phase
(mcf-like) into one instruction stream, switching every few thousand
instructions.  PLB's 256-cycle windows eventually follow the phase
changes — but each transition costs it either performance (still
narrow when the fast phase returns) or opportunity (still wide while
the slow phase stalls).  DCG needs no tracking: it gates whatever is
idle this cycle.

Usage::

    python examples/phase_tracking.py [phase_length]
"""

import sys

from repro import MachineConfig, Pipeline, TraceStream
from repro.core import DCGPolicy, NoGatingPolicy, PLBPolicy
from repro.power import BlockPowers, PowerAccountant
from repro.workloads import PhasedWorkload


def run(policy, phase_length: int, n: int):
    workload = PhasedWorkload(["gzip", "mcf"], phase_length=phase_length)
    pipe = Pipeline(MachineConfig(), TraceStream(iter(workload), limit=n),
                    policy)
    workload.prewarm(pipe.hierarchy)
    accountant = PowerAccountant(BlockPowers(pipe.config))
    pipe.add_observer(accountant.observe)
    stats = pipe.run(max_instructions=n)
    return stats, accountant


def main() -> None:
    phase_length = int(sys.argv[1]) if len(sys.argv) > 1 else 4_000
    n = 8 * phase_length
    print(f"workload: gzip/mcf phases of {phase_length} instructions, "
          f"{n} total\n")

    base_stats, __ = run(NoGatingPolicy(), phase_length, n)
    print(f"{'policy':10s} {'cycles':>8s} {'IPC':>6s} {'saved':>7s} "
          f"{'perf':>7s}  notes")
    print(f"{'base':10s} {base_stats.cycles:8d} {base_stats.ipc:6.2f} "
          f"{'—':>7s} {'100.0%':>7s}")

    dcg_stats, dcg_acc = run(DCGPolicy(), phase_length, n)
    print(f"{'dcg':10s} {dcg_stats.cycles:8d} {dcg_stats.ipc:6.2f} "
          f"{dcg_acc.total_saving_fraction:7.1%} "
          f"{base_stats.cycles / dcg_stats.cycles:7.1%}")

    plb = PLBPolicy(extended=True)
    plb_stats, plb_acc = run(plb, phase_length, n)
    total = sum(plb.mode_cycles.values())
    modes = "/".join(f"{plb.mode_cycles[m] / total:.0%}" for m in (8, 6, 4))
    print(f"{'plb-ext':10s} {plb_stats.cycles:8d} {plb_stats.ipc:6.2f} "
          f"{plb_acc.total_saving_fraction:7.1%} "
          f"{base_stats.cycles / plb_stats.cycles:7.1%}  "
          f"modes 8/6/4: {modes}, {plb.transitions} transitions")

    print("\nPLB re-learns the machine width after every phase change; "
          "DCG's saving\nis the per-cycle idle fraction, phase structure "
          "or not.")


if __name__ == "__main__":
    main()
