#!/usr/bin/env python3
"""Why prediction loses to determinism: PLB's mode timeline.

Runs a high-ILP benchmark (gzip) and a stall-bound one (mcf) under
PLB-ext and prints how the trigger FSM moves the machine between the
8-/6-/4-wide modes — then contrasts each with DCG, which needs no
modes at all.  The run shows both PLB failure cases the paper calls
out: under-provisioning (performance loss) and over-provisioning
(lost gating opportunity).

Usage::

    python examples/plb_phase_behaviour.py
"""

from repro import PLBPolicy, Simulator
from repro.core.plb import PLBTriggerConfig


def run_one(benchmark: str, instructions: int = 12_000) -> None:
    sim = Simulator()
    base = sim.run_benchmark(benchmark, "base", instructions=instructions)

    policy = PLBPolicy(extended=True, triggers=PLBTriggerConfig())
    plb = sim.run_benchmark(benchmark, policy, instructions=instructions)
    dcg = sim.run_benchmark(benchmark, "dcg", instructions=instructions)

    total = sum(plb.mode_cycles.values())
    print(f"\n=== {benchmark} (base IPC {base.ipc:.2f}) ===")
    print("PLB-ext time in each issue mode:")
    for mode in (8, 6, 4):
        share = plb.mode_cycles[mode] / total if total else 0.0
        bar = "#" * round(40 * share)
        print(f"  {mode}-wide {share:6.1%} {bar}")
    print(f"  mode transitions: {policy.transitions}")
    print(f"PLB-ext: saved {plb.total_saving:.1%}, "
          f"performance {plb.performance_relative(base):.1%}")
    print(f"DCG:     saved {dcg.total_saving:.1%}, "
          f"performance {dcg.performance_relative(base):.1%} "
          "(no modes, no thresholds)")


def main() -> None:
    print("PLB predicts ILP per 256-cycle window and picks a machine "
          "width;\nDCG just gates whatever the issue stage proves idle.")
    run_one("gzip")   # high ILP: PLB mostly stays wide -> little saving
    run_one("mcf")    # stall-bound: PLB narrows, but DCG still saves more


if __name__ == "__main__":
    main()
