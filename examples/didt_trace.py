#!/usr/bin/env python3
"""Per-cycle power traces and the §3.1 di/dt argument.

Records the machine's cycle-by-cycle power under DCG with the paper's
sequential-priority functional-unit binding and with a round-robin
binding.  Sequential priority keeps the same low-index units busy and
the same high-index units gated, so gate controls rarely toggle and the
power trace is calmer; round-robin spreads work across units and
toggles constantly — the control-power and supply-noise cost the paper
avoids by design.

Usage::

    python examples/didt_trace.py [benchmark]
"""

import sys
from dataclasses import replace

from repro import DCGPolicy, MachineConfig, Pipeline, TraceStream
from repro.backend import AllocationPolicy
from repro.power import BlockPowers, PowerTraceRecorder
from repro.workloads import SyntheticTraceGenerator, get_profile


def run(benchmark: str, policy_kind: AllocationPolicy, n: int = 6000):
    config = MachineConfig(fu_policy=policy_kind)
    generator = SyntheticTraceGenerator(get_profile(benchmark))
    dcg = DCGPolicy()
    pipe = Pipeline(config, TraceStream(iter(generator), limit=n), dcg)
    generator.prewarm(pipe.hierarchy)
    recorder = PowerTraceRecorder(BlockPowers(config))
    pipe.add_observer(recorder.observe)
    pipe.run(max_instructions=n)
    return dcg, recorder, pipe.stats


def main() -> None:
    benchmark = sys.argv[1] if len(sys.argv) > 1 else "gzip"
    print(f"workload: {benchmark}; DCG active in both runs\n")
    for label, kind in (("sequential-priority (paper §3.1)",
                         AllocationPolicy.SEQUENTIAL_PRIORITY),
                        ("round-robin (ablation)",
                         AllocationPolicy.ROUND_ROBIN)):
        dcg, recorder, stats = run(benchmark, kind)
        toggles_per_kcycle = 1000 * dcg.toggle_count / stats.cycles
        print(f"{label}:")
        print(f"  mean power {recorder.mean_power:6.2f} W   "
              f"peak {recorder.peak_power:6.2f} W   "
              f"max step {recorder.max_step():5.2f} W/cycle")
        print(f"  gate toggles: {toggles_per_kcycle:.0f} per kilo-cycle")
        print(f"  trace: {recorder.sparkline(width=64)}\n")


if __name__ == "__main__":
    main()
