#!/usr/bin/env python3
"""Regenerate every table and figure in the paper's evaluation.

Runs the full experiment grid (18 SPEC2000-like benchmarks x
{base, DCG, PLB-orig, PLB-ext} x {8-stage, 20-stage, ALU sweep}) and
prints each reproduced table with the paper's numbers alongside.

The per-benchmark instruction budget defaults to 8 000 and can be
raised for higher fidelity::

    REPRO_SIM_INSTRUCTIONS=50000 python examples/reproduce_paper.py

Expect a few minutes of wall-clock time at the default budget.
"""

import time

from repro import ExperimentRunner, run_all_experiments
from repro.analysis.charts import figure_chart


def main() -> None:
    runner = ExperimentRunner()
    print(f"instruction budget per run: {runner.instructions}")
    start = time.time()
    for result in run_all_experiments(runner):
        print()
        print(result.render())
        if result.figure_id in ("fig12", "fig13", "fig14", "fig15", "fig16"):
            print()
            print(figure_chart(result))
        print("-" * 72)
    print(f"\ntotal wall-clock: {time.time() - start:.1f}s")


if __name__ == "__main__":
    main()
