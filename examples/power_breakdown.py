#!/usr/bin/env python3
"""Where the watts go: the Wattch-calibrated power budget, and how DCG
carves it up on shallow and deep pipelines.

Prints the per-structure baseline breakdown (clock network ~30 % of
processor power, execution units ~14 %, ...), then decomposes a DCG
run's saving by block family, and finally repeats the experiment on
the 20-stage machine of §5.6 where the latch share — and therefore
DCG's saving — grows.

Usage::

    python examples/power_breakdown.py [benchmark]
"""

import sys

from repro import Simulator, baseline_config, deep_pipeline_config
from repro.power import BlockPowers


def print_budget(blocks: BlockPowers, title: str) -> None:
    print(f"\n{title} ({blocks.total:.1f} W total):")
    for name, watts in sorted(blocks.breakdown().items(),
                              key=lambda kv: -kv[1]):
        bar = "#" * round(40 * watts / blocks.total)
        print(f"  {name:18s} {watts:6.2f} W {watts/blocks.total:6.1%} {bar}")


def main() -> None:
    benchmark = sys.argv[1] if len(sys.argv) > 1 else "perlbmk"
    instructions = 8_000

    shallow = Simulator(baseline_config())
    print_budget(shallow.blocks, "8-stage baseline budget")

    result = shallow.run_benchmark(benchmark, "dcg",
                                   instructions=instructions)
    print(f"\nDCG on {benchmark}: {result.total_saving:.1%} of total "
          "power saved, by family:")
    blocks = shallow.blocks
    family_watts = {
        "int_units": sum(blocks.fu_instance[c] * blocks.config.fu_counts[c]
                         for c in list(blocks.fu_instance)[:2]),
        "fp_units": sum(blocks.fu_instance[c] * blocks.config.fu_counts[c]
                        for c in list(blocks.fu_instance)[2:]),
        "latches": blocks.latch_total,
        "dcache": blocks.dcache_total,
        "result_bus": blocks.result_bus_total,
    }
    for family, watts in family_watts.items():
        saving = result.family_savings[family]
        contribution = saving * watts / blocks.total
        print(f"  {family:12s} {saving:6.1%} of {watts:5.2f} W "
              f"-> {contribution:5.1%} of total")

    deep = Simulator(deep_pipeline_config())
    print_budget(deep.blocks, "20-stage machine budget (§5.6)")
    deep_result = deep.run_benchmark(benchmark, "dcg",
                                     instructions=instructions)
    print(f"\nDCG on the 20-stage machine: {deep_result.total_saving:.1%} "
          f"saved (vs {result.total_saving:.1%} on 8-stage) — deeper "
          "pipelines have more gateable latches.")


if __name__ == "__main__":
    main()
