#!/usr/bin/env python3
"""Execute-driven simulation: your own assembly through the full stack.

Assembles a histogram kernel written in the reproduction ISA, checks
its architectural result with the functional simulator, then replays
its trace through the out-of-order pipeline under the base and DCG
policies.  Integer-only code like this shows DCG's sharpest win: the
idle FP units are clock-gated every single cycle.

Usage::

    python examples/custom_kernel.py
"""

from repro import Simulator
from repro.isa import assemble, run_program, trace_program

HISTOGRAM = """
# count values 0..7 from `data` into 8 bins at `bins`
.data
data:   .word 3, 1, 4, 1, 5, 2, 6, 5, 3, 5, 0, 7, 1, 3, 2, 6
        .word 4, 4, 2, 7, 0, 1, 6, 3, 5, 2, 4, 7, 1, 0, 3, 5
bins:   .space 64
.text
main:   li   r1, 0            # index
        li   r2, 32           # element count
loop:   slli r3, r1, 3
        ld   r4, data(r3)     # value
        slli r5, r4, 3
        ld   r6, bins(r5)     # current count
        addi r6, r6, 1
        st   r6, bins(r5)     # increment bin
        addi r1, r1, 1
        blt  r1, r2, loop
        halt
"""


def main() -> None:
    program = assemble(HISTOGRAM)
    print("assembled listing (first 12 lines):")
    for line in program.listing().splitlines()[:12]:
        print(f"  {line}")

    # 1. functional execution: check the architectural answer
    functional = run_program(program)
    bins_base = program.labels["bins"]
    counts = [functional.memory.get(bins_base + 8 * i, 0) for i in range(8)]
    print(f"\nhistogram bins: {counts}  "
          f"(total {sum(counts)} elements, {functional.retired} insts)")

    # 2. timing + power: replay the same trace through the pipeline
    sim = Simulator()
    base = sim.run_trace(trace_program(program), "base", name="histogram")
    dcg = sim.run_trace(trace_program(program), "dcg", name="histogram")
    print(f"\nbase: {base.cycles} cycles, IPC {base.ipc:.2f}")
    print(f"DCG:  {dcg.cycles} cycles, IPC {dcg.ipc:.2f} "
          f"-> {dcg.total_saving:.1%} of total power saved, "
          f"0 cycles lost")
    print(f"FP units gated {dcg.family_savings['fp_units']:.1%} of the time "
          "(integer-only kernel: the paper's Fig 13 effect)")

    # 3. pipetrace: watch one loop iteration move through the stages
    from repro.pipeline import MachineConfig, Pipeline, render_pipetrace
    from repro.core import NoGatingPolicy
    from repro.trace import TraceStream

    pipe = Pipeline(MachineConfig(), TraceStream(trace_program(program)),
                    NoGatingPolicy())
    pipe.capture_ops(12)
    pipe.run()
    print("\npipetrace of the first 12 micro-ops:")
    print(render_pipetrace(pipe.captured_ops, max_cycles=80))


if __name__ == "__main__":
    main()
