#!/usr/bin/env python3
"""Quickstart: simulate one benchmark under every gating policy.

Runs the SPEC2000-like ``gzip`` workload on the paper's Table 1
machine under the base (no gating), DCG, PLB-orig, and PLB-ext
policies, and prints the headline comparison: DCG saves ~20 % of total
processor power at zero performance cost, while PLB saves less and
slows the machine down.

Usage::

    python examples/quickstart.py [benchmark] [instructions]
"""

import sys

from repro import Simulator


def main() -> None:
    benchmark = sys.argv[1] if len(sys.argv) > 1 else "gzip"
    instructions = int(sys.argv[2]) if len(sys.argv) > 2 else 10_000

    sim = Simulator()
    print(f"machine: 8-wide out-of-order, Table 1 configuration "
          f"({sim.blocks.total:.0f} W budget)")
    print(f"workload: {benchmark}, {instructions} instructions\n")

    base = sim.run_benchmark(benchmark, "base", instructions=instructions)
    print(f"{'policy':10s} {'cycles':>8s} {'IPC':>6s} {'power':>8s} "
          f"{'saved':>7s} {'perf':>7s}")
    for policy in ("base", "dcg", "plb-orig", "plb-ext"):
        result = sim.run_benchmark(benchmark, policy,
                                   instructions=instructions)
        print(f"{policy:10s} {result.cycles:8d} {result.ipc:6.2f} "
              f"{result.average_power:7.2f}W "
              f"{result.total_saving:7.1%} "
              f"{result.performance_relative(base):7.1%}")

    dcg = sim.run_benchmark(benchmark, "dcg", instructions=instructions)
    print("\nDCG per-component savings (share of each family's power):")
    for family in ("int_units", "fp_units", "latches", "dcache",
                   "result_bus"):
        print(f"  {family:12s} {dcg.family_savings[family]:6.1%}")


if __name__ == "__main__":
    main()
